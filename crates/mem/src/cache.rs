//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement.
//!
//! The cache is a *timing and content* model: it tracks which line tags are
//! resident (so hit/miss behaviour is exact for the address stream) but not
//! data values. Dirty bits are tracked so write-back traffic is accounted.

use crate::stats::CacheStats;

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways); 1 = direct mapped.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles (the time to *this* level, not round trip
    /// through lower levels).
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the geometry yields
    /// at least one set.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64, latency: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "need at least one way");
        assert!(
            size_bytes >= u64::from(ways) * line_bytes,
            "cache of {size_bytes} B can't hold {ways} ways of {line_bytes} B lines"
        );
        let sets = size_bytes / (u64::from(ways) * line_bytes);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }
}

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// Line address of a dirty victim evicted by the fill (misses only).
    pub writeback: Option<u64>,
}

/// Result of removing a line (for promotion/invalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemovedLine {
    /// Line-aligned address.
    pub addr: u64,
    /// Whether it was dirty.
    pub dirty: bool,
}

/// A set-associative write-back cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[s]` is ordered MRU-first; length <= ways.
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(cfg.ways as usize); cfg.sets() as usize];
        Cache {
            cfg,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.cfg.sets()) as usize;
        let tag = line / self.cfg.sets();
        (set, tag)
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.cfg.sets() + set as u64) * self.cfg.line_bytes
    }

    /// Accesses `addr`; on a miss the line is allocated (write-allocate),
    /// possibly evicting the LRU line. `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        let (set, tag) = self.set_and_tag(addr);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.tag == tag) {
            self.stats.hits += 1;
            let mut line = lines.remove(pos);
            line.dirty |= is_write;
            lines.insert(0, line);
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        let writeback = self.install(set, tag, is_write);
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Checks residency without updating LRU or stats.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Records a demand access in the statistics without touching cache
    /// contents — for composite structures (e.g. the asymmetric DL1) that
    /// manage residency themselves via [`Cache::fill`]/[`Cache::remove`].
    pub fn stats_record_demand(&mut self, is_write: bool, hit: bool) {
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }

    /// Marks the line containing `addr` dirty and moves it to MRU, if
    /// resident. Returns whether the line was present.
    pub fn mark_used(&mut self, addr: u64, is_write: bool) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let Some(pos) = self.sets[set].iter().position(|l| l.tag == tag) else {
            return false;
        };
        let mut line = self.sets[set].remove(pos);
        line.dirty |= is_write;
        self.sets[set].insert(0, line);
        true
    }

    /// The address of the line that would be evicted if `addr`'s set had to
    /// accept a new line right now (`None` if the set has a free way).
    pub fn occupant_of_set(&self, addr: u64) -> Option<u64> {
        let (set, _) = self.set_and_tag(addr);
        let lines = &self.sets[set];
        if lines.len() < self.cfg.ways as usize {
            None
        } else {
            lines.last().map(|l| self.line_addr(set, l.tag))
        }
    }

    /// Inserts a line (MRU position) without counting an access — used for
    /// fills from another structure, e.g. demotions from a FastCache.
    /// Returns the dirty victim's address, if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(pos) = self.sets[set].iter().position(|l| l.tag == tag) {
            // Already resident: merge dirtiness, refresh LRU.
            let mut line = self.sets[set].remove(pos);
            line.dirty |= dirty;
            self.sets[set].insert(0, line);
            return None;
        }
        self.install(set, tag, dirty)
    }

    fn install(&mut self, set: usize, tag: u64, dirty: bool) -> Option<u64> {
        self.stats.fills += 1;
        let ways = self.cfg.ways as usize;
        let mut writeback = None;
        if self.sets[set].len() == ways {
            let victim = self.sets[set].pop().expect("full set has a victim");
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some(self.line_addr(set, victim.tag));
            }
        }
        self.sets[set].insert(0, Line { tag, dirty });
        writeback
    }

    /// Removes the line containing `addr`, returning it if present — used
    /// for promotions into a FastCache and for coherence invalidations.
    pub fn remove(&mut self, addr: u64) -> Option<RemovedLine> {
        let (set, tag) = self.set_and_tag(addr);
        let pos = self.sets[set].iter().position(|l| l.tag == tag)?;
        let line = self.sets[set].remove(pos);
        Some(RemovedLine {
            addr: self.line_addr(set, tag),
            dirty: line.dirty,
        })
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// The line-aligned address of `addr`.
    pub fn align(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    /// Validates the structural invariants of this cache under `level`:
    /// no set holds more lines than the associativity allows, no set
    /// holds two lines with the same tag, and the demand counters obey
    /// hit/miss conservation.
    pub fn validate(&self, level: &str, checker: &mut hetsim_check::Checker) {
        crate::stats::validate_cache_stats(level, &self.stats, checker);
        checker.scoped(level, |c| {
            for (set, lines) in self.sets.iter().enumerate() {
                c.le_u64(
                    "mem.set_occupancy",
                    (&format!("set[{set}].len"), lines.len() as u64),
                    ("ways", u64::from(self.cfg.ways)),
                );
                let mut tags: Vec<u64> = lines.iter().map(|l| l.tag).collect();
                tags.sort_unstable();
                tags.dedup();
                c.eq_u64(
                    "mem.unique_tags",
                    (&format!("set[{set}] distinct tags"), tags.len() as u64),
                    ("resident lines", lines.len() as u64),
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same line, different offset");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines with addresses k * sets * line = k * 256.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000: 0x100 becomes LRU
        c.access(0x200, false); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn remove_returns_line_state() {
        let mut c = small();
        c.access(0x140, true);
        let removed = c.remove(0x160).expect("same line");
        assert_eq!(removed.addr, 0x140);
        assert!(removed.dirty);
        assert!(!c.probe(0x140));
        assert!(c.remove(0x140).is_none());
    }

    #[test]
    fn fill_does_not_count_as_access() {
        let mut c = small();
        c.fill(0x000, false);
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().fills, 1);
        assert!(c.probe(0x000));
    }

    #[test]
    fn fill_merges_dirtiness() {
        let mut c = small();
        c.fill(0x000, false);
        c.fill(0x000, true); // re-fill dirty
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn stats_add_up() {
        let mut c = small();
        for addr in [0x0, 0x40, 0x80, 0x0, 0x40, 0x80] {
            c.access(addr, false);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 6);
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = small();
        for i in 0..100 {
            c.access(i * 64, false);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig::new(512, 2, 48, 1);
    }

    #[test]
    fn direct_mapped_works() {
        let mut c = Cache::new(CacheConfig::new(256, 1, 64, 1));
        c.access(0x000, false);
        c.access(0x100, false); // same set, evicts
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn table_iii_geometries_construct() {
        // 32KB 2-way IL1, 32KB 8-way DL1, 4KB 1-way fast, 256KB 8-way L2,
        // 8MB 16-way L3.
        let _ = CacheConfig::new(32 * 1024, 2, 64, 2);
        let _ = CacheConfig::new(32 * 1024, 8, 64, 2);
        let _ = CacheConfig::new(4 * 1024, 1, 64, 1);
        let _ = CacheConfig::new(256 * 1024, 8, 64, 8);
        let _ = CacheConfig::new(8 * 1024 * 1024, 16, 64, 32);
    }
}
