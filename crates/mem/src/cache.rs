//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement.
//!
//! The cache is a *timing and content* model: it tracks which line tags are
//! resident (so hit/miss behaviour is exact for the address stream) but not
//! data values. Dirty bits are tracked so write-back traffic is accounted.

use crate::stats::CacheStats;

/// Geometry and timing of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways); 1 = direct mapped.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles (the time to *this* level, not round trip
    /// through lower levels).
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the geometry yields
    /// at least one set.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64, latency: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "need at least one way");
        assert!(
            size_bytes >= u64::from(ways) * line_bytes,
            "cache of {size_bytes} B can't hold {ways} ways of {line_bytes} B lines"
        );
        let sets = size_bytes / (u64::from(ways) * line_bytes);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// Line address of a dirty victim evicted by the fill (misses only).
    pub writeback: Option<u64>,
}

/// Result of removing a line (for promotion/invalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemovedLine {
    /// Line-aligned address.
    pub addr: u64,
    /// Whether it was dirty.
    pub dirty: bool,
}

/// A set-associative write-back cache.
///
/// Storage is a flat `sets x ways` matrix of packed line words: the
/// live lines of set `s` are `words[s*ways..s*ways+lens[s]]`, ordered
/// MRU-first, each word holding `(tag << 1) | dirty`. A tag probe scans
/// a short contiguous `u64` slice and an LRU touch is one `copy_within`
/// memmove — no per-set heap indirection, no element shuffling through
/// `Vec::remove`/`insert`, and no second parallel array for the dirty
/// bit. Set/tag extraction is shift-and-mask (geometry is asserted
/// power-of-two at construction), not division: this sits on the
/// simulator's per-load critical path.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `sets - 1`.
    set_mask: u64,
    /// `log2(sets)`.
    tag_shift: u32,
    ways: usize,
    /// Packed `(tag << 1) | dirty` words, MRU-first within each set's
    /// `ways`-wide row.
    words: Vec<u64>,
    /// Live lines per set (<= ways).
    lens: Vec<u8>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two() && cfg.line_bytes.is_power_of_two(),
            "cache geometry must be power-of-two"
        );
        assert!(cfg.ways <= u32::from(u8::MAX), "associativity fits in u8");
        let slots = sets as usize * cfg.ways as usize;
        Cache {
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            ways: cfg.ways as usize,
            words: vec![0; slots],
            lens: vec![0; sets as usize],
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.tag_shift;
        debug_assert!(tag < 1 << 63, "tag must leave bit 63 free for packing");
        (set, tag)
    }

    #[inline]
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        ((tag << self.tag_shift) | set as u64) << self.line_shift
    }

    /// Position of `tag` among set `set`'s live lines (MRU-first).
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        self.words[base..base + self.lens[set] as usize]
            .iter()
            .position(|&w| w >> 1 == tag)
    }

    /// Moves the line at `pos` to the MRU front of its set, merging
    /// `is_write` into its dirty bit.
    #[inline]
    fn touch(&mut self, set: usize, pos: usize, is_write: bool) {
        let base = set * self.ways;
        let w = self.words[base + pos] | u64::from(is_write);
        self.words.copy_within(base..base + pos, base + 1);
        self.words[base] = w;
    }

    /// Accesses `addr`; on a miss the line is allocated (write-allocate),
    /// possibly evicting the LRU line. `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        let (set, tag) = self.set_and_tag(addr);
        if let Some(pos) = self.find(set, tag) {
            self.stats.hits += 1;
            self.touch(set, pos, is_write);
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        let writeback = self.install(set, tag, is_write);
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Checks residency without updating LRU or stats.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.find(set, tag).is_some()
    }

    /// Records a demand access in the statistics without touching cache
    /// contents — for composite structures (e.g. the asymmetric DL1) that
    /// manage residency themselves via [`Cache::fill`]/[`Cache::remove`].
    pub fn stats_record_demand(&mut self, is_write: bool, hit: bool) {
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }

    /// Marks the line containing `addr` dirty and moves it to MRU, if
    /// resident. Returns whether the line was present.
    pub fn mark_used(&mut self, addr: u64, is_write: bool) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let Some(pos) = self.find(set, tag) else {
            return false;
        };
        self.touch(set, pos, is_write);
        true
    }

    /// The address of the line that would be evicted if `addr`'s set had to
    /// accept a new line right now (`None` if the set has a free way).
    pub fn occupant_of_set(&self, addr: u64) -> Option<u64> {
        let (set, _) = self.set_and_tag(addr);
        let len = self.lens[set] as usize;
        if len < self.ways {
            None
        } else {
            Some(self.line_addr(set, self.words[set * self.ways + len - 1] >> 1))
        }
    }

    /// Bulk-installs `n_lines` consecutive clean lines starting at `base`:
    /// exactly equivalent (final state and statistics) to calling
    /// `fill(base + i * line_bytes, false)` for `i` in `0..n_lines`, but
    /// linear-time with no per-line LRU rotation — walking the lines
    /// newest-first writes each set's row directly in MRU order, and any
    /// line beyond a set's associativity is precisely the (clean, so
    /// silently dropped) victim the literal loop would have evicted.
    /// Falls back to that literal loop if the cache is not empty, where
    /// the bulk construction's cold-set assumption breaks.
    pub fn prewarm_sequential(&mut self, base: u64, n_lines: u64) {
        if self.lens.iter().any(|&l| l != 0) {
            for i in 0..n_lines {
                self.fill(base + (i << self.line_shift), false);
            }
            return;
        }
        let line0 = base >> self.line_shift;
        for i in (0..n_lines).rev() {
            let line = line0 + i;
            let set = (line & self.set_mask) as usize;
            let len = self.lens[set] as usize;
            if len < self.ways {
                self.words[set * self.ways + len] = (line >> self.tag_shift) << 1;
                self.lens[set] = len as u8 + 1;
            }
        }
        self.stats.fills += n_lines;
    }

    /// Inserts a line (MRU position) without counting an access — used for
    /// fills from another structure, e.g. demotions from a FastCache.
    /// Returns the dirty victim's address, if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(pos) = self.find(set, tag) {
            // Already resident: merge dirtiness, refresh LRU.
            self.touch(set, pos, dirty);
            return None;
        }
        self.install(set, tag, dirty)
    }

    fn install(&mut self, set: usize, tag: u64, dirty: bool) -> Option<u64> {
        self.stats.fills += 1;
        let base = set * self.ways;
        let mut writeback = None;
        let mut len = self.lens[set] as usize;
        if len == self.ways {
            // Full set: the LRU line at the back is the victim; the
            // shift below recycles its slot for the new MRU line.
            let victim = self.words[base + len - 1];
            if victim & 1 != 0 {
                self.stats.writebacks += 1;
                writeback = Some(self.line_addr(set, victim >> 1));
            }
        } else {
            len += 1;
            self.lens[set] = len as u8;
        }
        self.words.copy_within(base..base + len - 1, base + 1);
        self.words[base] = (tag << 1) | u64::from(dirty);
        writeback
    }

    /// Removes the line containing `addr`, returning it if present — used
    /// for promotions into a FastCache and for coherence invalidations.
    pub fn remove(&mut self, addr: u64) -> Option<RemovedLine> {
        let (set, tag) = self.set_and_tag(addr);
        let pos = self.find(set, tag)?;
        let base = set * self.ways;
        let len = self.lens[set] as usize;
        let removed = RemovedLine {
            addr: self.line_addr(set, tag),
            dirty: self.words[base + pos] & 1 != 0,
        };
        self.words
            .copy_within(base + pos + 1..base + len, base + pos);
        self.lens[set] = (len - 1) as u8;
        Some(removed)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// The line-aligned address of `addr`.
    pub fn align(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    /// Validates the structural invariants of this cache under `level`:
    /// no set holds more lines than the associativity allows, no set
    /// holds two lines with the same tag, and the demand counters obey
    /// hit/miss conservation.
    pub fn validate(&self, level: &str, checker: &mut hetsim_check::Checker) {
        crate::stats::validate_cache_stats(level, &self.stats, checker);
        checker.scoped(level, |c| {
            for (set, &len) in self.lens.iter().enumerate() {
                let len = len as usize;
                c.le_u64(
                    "mem.set_occupancy",
                    (&format!("set[{set}].len"), len as u64),
                    ("ways", u64::from(self.cfg.ways)),
                );
                let base = set * self.ways;
                let mut tags: Vec<u64> = self.words[base..base + len]
                    .iter()
                    .map(|&w| w >> 1)
                    .collect();
                tags.sort_unstable();
                tags.dedup();
                c.eq_u64(
                    "mem.unique_tags",
                    (&format!("set[{set}] distinct tags"), tags.len() as u64),
                    ("resident lines", len as u64),
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64, 1))
    }

    /// The bulk prewarm must be observably identical to the literal
    /// fill loop it replaces: same residency, same MRU/victim order,
    /// same statistics — including when the span only partially fills
    /// the sets and when it exceeds capacity (clean evictions).
    #[test]
    fn prewarm_sequential_matches_fill_loop() {
        for n_lines in [0u64, 3, 7, 8, 11, 16] {
            let mut bulk = small();
            let mut looped = small();
            bulk.prewarm_sequential(0, n_lines);
            for i in 0..n_lines {
                looped.fill(i * 64, false);
            }
            assert_eq!(bulk.stats(), looped.stats(), "n={n_lines}");
            for i in 0..n_lines {
                assert_eq!(
                    bulk.probe(i * 64),
                    looped.probe(i * 64),
                    "n={n_lines} line {i}"
                );
            }
            // Same LRU state: a conflicting install must evict the same
            // victim from both.
            for probe_set in 0..4u64 {
                bulk.fill(0x1000 + probe_set * 64, false);
                looped.fill(0x1000 + probe_set * 64, false);
            }
            for i in 0..n_lines {
                assert_eq!(
                    bulk.probe(i * 64),
                    looped.probe(i * 64),
                    "post-evict n={n_lines}"
                );
            }
            let mut checker = hetsim_check::Checker::new();
            bulk.validate("bulk", &mut checker);
            assert!(
                checker.into_violations().is_empty(),
                "bulk state is well formed (n={n_lines})"
            );
        }
    }

    /// On a non-empty cache the bulk path falls back to literal fills.
    #[test]
    fn prewarm_sequential_fallback_on_warm_cache() {
        let mut warm = small();
        warm.access(0x40, true);
        let mut looped = small();
        looped.access(0x40, true);
        warm.prewarm_sequential(0, 8);
        for i in 0..8 {
            looped.fill(i * 64, false);
        }
        assert_eq!(warm.stats(), looped.stats());
        for i in 0..8u64 {
            assert_eq!(warm.probe(i * 64), looped.probe(i * 64));
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same line, different offset");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines with addresses k * sets * line = k * 256.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000: 0x100 becomes LRU
        c.access(0x200, false); // evicts 0x100
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let out = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn remove_returns_line_state() {
        let mut c = small();
        c.access(0x140, true);
        let removed = c.remove(0x160).expect("same line");
        assert_eq!(removed.addr, 0x140);
        assert!(removed.dirty);
        assert!(!c.probe(0x140));
        assert!(c.remove(0x140).is_none());
    }

    #[test]
    fn fill_does_not_count_as_access() {
        let mut c = small();
        c.fill(0x000, false);
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().fills, 1);
        assert!(c.probe(0x000));
    }

    #[test]
    fn fill_merges_dirtiness() {
        let mut c = small();
        c.fill(0x000, false);
        c.fill(0x000, true); // re-fill dirty
        c.access(0x100, false);
        let out = c.access(0x200, false);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn stats_add_up() {
        let mut c = small();
        for addr in [0x0, 0x40, 0x80, 0x0, 0x40, 0x80] {
            c.access(addr, false);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 6);
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = small();
        for i in 0..100 {
            c.access(i * 64, false);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig::new(512, 2, 48, 1);
    }

    #[test]
    fn direct_mapped_works() {
        let mut c = Cache::new(CacheConfig::new(256, 1, 64, 1));
        c.access(0x000, false);
        c.access(0x100, false); // same set, evicts
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn table_iii_geometries_construct() {
        // 32KB 2-way IL1, 32KB 8-way DL1, 4KB 1-way fast, 256KB 8-way L2,
        // 8MB 16-way L3.
        let _ = CacheConfig::new(32 * 1024, 2, 64, 2);
        let _ = CacheConfig::new(32 * 1024, 8, 64, 2);
        let _ = CacheConfig::new(4 * 1024, 1, 64, 1);
        let _ = CacheConfig::new(256 * 1024, 8, 64, 8);
        let _ = CacheConfig::new(8 * 1024 * 1024, 16, 64, 32);
    }
}
