//! Event counters for the memory system.
//!
//! The power model consumes these counts: every access to every level is an
//! energy event, and writebacks/fills generate traffic at the level below.
//!
//! Both structs are defined through [`hetsim_stats::counters!`]:
//! `merge`/`minus`/`iter()` and serde support are derived from the field
//! list, and [`MemStats`] nests [`CacheStats`] as counter *groups* — its
//! `iter()` yields dotted names like `"il1.accesses"`, and its
//! `merge`/`minus` delegate level by level.

use hetsim_stats::counters;

counters! {
    /// Counters for one cache structure.
    pub struct CacheStats {
        /// Demand accesses (loads + stores reaching this level).
        pub accesses: u64,
        /// Demand accesses that were writes.
        pub writes: u64,
        /// Demand hits.
        pub hits: u64,
        /// Demand misses.
        pub misses: u64,
        /// Lines installed (demand fills + external fills).
        pub fills: u64,
        /// Dirty lines written back to the level below.
        pub writebacks: u64,
    }
}

impl CacheStats {
    /// Hit rate over demand accesses; 0 if there were none.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

counters! {
    /// Whole-hierarchy counters for one core, as consumed by the power model.
    pub struct MemStats {
        /// Instruction-cache accesses (one per fetch group).
        pub il1: CacheStats,
        /// Data-cache accesses. For the asymmetric DL1 this counts FastCache
        /// probes (every data access probes the fast way first).
        pub dl1_fast: CacheStats,
        /// SlowCache (or the whole DL1 for a conventional design) accesses.
        pub dl1_slow: CacheStats,
        /// Promotions from SlowCache to FastCache (asymmetric DL1 only).
        pub promotions: u64,
        /// L2 accesses.
        pub l2: CacheStats,
        /// L3 accesses.
        pub l3: CacheStats,
        /// DRAM accesses.
        pub dram_accesses: u64,
    }
}

impl MemStats {
    /// Total DL1 demand accesses regardless of organization.
    pub fn dl1_accesses(&self) -> u64 {
        // For a plain DL1, only `dl1_slow` is populated; for the asymmetric
        // DL1 every access probes the fast way, so `dl1_fast.accesses` is
        // the demand count.
        if self.dl1_fast.accesses > 0 {
            self.dl1_fast.accesses
        } else {
            self.dl1_slow.accesses
        }
    }

    /// Overall DL1 hit rate (fast or slow).
    pub fn dl1_hit_rate(&self) -> f64 {
        let demand = self.dl1_accesses();
        if demand == 0 {
            return 0.0;
        }
        let hits = self.dl1_fast.hits + self.dl1_slow.hits;
        hits as f64 / demand as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            accesses: 10,
            writes: 2,
            hits: 7,
            misses: 3,
            fills: 3,
            writebacks: 1,
        };
        let b = CacheStats {
            accesses: 5,
            writes: 1,
            hits: 5,
            misses: 0,
            fills: 0,
            writebacks: 0,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 12);
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dl1_accessors_pick_populated_side() {
        let mut m = MemStats::default();
        m.dl1_slow.accesses = 100;
        m.dl1_slow.hits = 90;
        assert_eq!(m.dl1_accesses(), 100);
        assert!((m.dl1_hit_rate() - 0.9).abs() < 1e-12);

        let mut asym = MemStats::default();
        asym.dl1_fast.accesses = 100;
        asym.dl1_fast.hits = 60;
        asym.dl1_slow.accesses = 40;
        asym.dl1_slow.hits = 30;
        assert_eq!(asym.dl1_accesses(), 100);
        assert!((asym.dl1_hit_rate() - 0.9).abs() < 1e-12);
    }

    /// Regression: warmup snapshots taken mid-flight can exceed the final
    /// count (e.g. fills for in-flight lines); release builds used to wrap.
    #[test]
    fn minus_saturates_instead_of_wrapping() {
        let mut a = MemStats::default();
        a.l2.fills = 3;
        let mut snap = MemStats::default();
        snap.l2.fills = 5;
        snap.promotions = 1;
        let d = a.minus(&snap);
        assert_eq!(d.l2.fills, 0, "nested counters saturate");
        assert_eq!(d.promotions, 0, "scalar counters saturate");
    }

    #[test]
    fn iter_flattens_the_hierarchy_with_dotted_names() {
        let mut m = MemStats::default();
        m.il1.accesses = 7;
        m.promotions = 3;
        let pairs: Vec<(String, u64)> = m.iter().collect();
        assert_eq!(pairs.len(), 5 * 6 + 2, "5 cache levels x 6 + 2 scalars");
        assert_eq!(pairs[0], ("il1.accesses".to_string(), 7));
        assert!(pairs.contains(&("promotions".to_string(), 3)));
        assert!(pairs.iter().any(|(n, _)| n == "l3.writebacks"));
        assert_eq!(m.get("il1.accesses"), Some(7));
    }
}
