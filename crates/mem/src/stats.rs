//! Event counters for the memory system.
//!
//! The power model consumes these counts: every access to every level is an
//! energy event, and writebacks/fills generate traffic at the level below.
//!
//! Both structs are defined through [`hetsim_stats::counters!`]:
//! `merge`/`minus`/`iter()` and serde support are derived from the field
//! list, and [`MemStats`] nests [`CacheStats`] as counter *groups* — its
//! `iter()` yields dotted names like `"il1.accesses"`, and its
//! `merge`/`minus` delegate level by level.

use hetsim_check::Checker;
use hetsim_stats::counters;

counters! {
    /// Counters for one cache structure.
    pub struct CacheStats {
        /// Demand accesses (loads + stores reaching this level).
        pub accesses: u64,
        /// Demand accesses that were writes.
        pub writes: u64,
        /// Demand hits.
        pub hits: u64,
        /// Demand misses.
        pub misses: u64,
        /// Lines installed (demand fills + external fills).
        pub fills: u64,
        /// Dirty lines written back to the level below.
        pub writebacks: u64,
    }
}

impl CacheStats {
    /// Hit rate over demand accesses; 0 if there were none.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

counters! {
    /// Whole-hierarchy counters for one core, as consumed by the power model.
    pub struct MemStats {
        /// Instruction-cache accesses (one per fetch group).
        pub il1: CacheStats,
        /// Data-cache accesses. For the asymmetric DL1 this counts FastCache
        /// probes (every data access probes the fast way first).
        pub dl1_fast: CacheStats,
        /// SlowCache (or the whole DL1 for a conventional design) accesses.
        pub dl1_slow: CacheStats,
        /// Promotions from SlowCache to FastCache (asymmetric DL1 only).
        pub promotions: u64,
        /// L2 accesses.
        pub l2: CacheStats,
        /// L3 accesses.
        pub l3: CacheStats,
        /// DRAM accesses.
        pub dram_accesses: u64,
    }
}

impl MemStats {
    /// Total DL1 demand accesses regardless of organization.
    pub fn dl1_accesses(&self) -> u64 {
        // For a plain DL1, only `dl1_slow` is populated; for the asymmetric
        // DL1 every access probes the fast way, so `dl1_fast.accesses` is
        // the demand count.
        if self.dl1_fast.accesses > 0 {
            self.dl1_fast.accesses
        } else {
            self.dl1_slow.accesses
        }
    }

    /// Overall DL1 hit rate (fast or slow).
    pub fn dl1_hit_rate(&self) -> f64 {
        let demand = self.dl1_accesses();
        if demand == 0 {
            return 0.0;
        }
        let hits = self.dl1_fast.hits + self.dl1_slow.hits;
        hits as f64 / demand as f64
    }
}

/// Validates the conservation identity of one cache level's counters:
/// every demand access is exactly one hit or one miss, and writes are a
/// subset of accesses. These relations hold event-for-event, so they
/// survive warmup-window subtraction and `merge` aggregation.
pub fn validate_cache_stats(level: &str, s: &CacheStats, checker: &mut Checker) {
    checker.scoped(level, |c| {
        c.eq_u64(
            "mem.hit_miss_conservation",
            ("hits + misses", s.hits + s.misses),
            ("accesses", s.accesses),
        );
        c.le_u64(
            "mem.writes_le_accesses",
            ("writes", s.writes),
            ("accesses", s.accesses),
        );
    });
}

/// Validates a whole [`MemStats`] set: per-level conservation plus the
/// cross-level demand-flow identities of the private hierarchy (an L1
/// demand miss is exactly one L2 demand access, an L2 miss one L3
/// access, and every L3 miss reaches DRAM). Fills from prewarming and
/// writebacks deliberately bypass the demand counters, so the
/// identities are exact for any measured window and for merged stats.
pub fn validate_mem_stats(m: &MemStats, checker: &mut Checker) {
    checker.scoped("mem", |c| {
        validate_cache_stats("il1", &m.il1, c);
        validate_cache_stats("dl1_fast", &m.dl1_fast, c);
        validate_cache_stats("dl1_slow", &m.dl1_slow, c);
        validate_cache_stats("l2", &m.l2, c);
        validate_cache_stats("l3", &m.l3, c);
        c.eq_u64(
            "mem.l2_demand_flow",
            ("il1.misses + dl1.misses", m.il1.misses + m.dl1_slow.misses),
            ("l2.accesses", m.l2.accesses),
        );
        c.eq_u64(
            "mem.l3_demand_flow",
            ("l2.misses", m.l2.misses),
            ("l3.accesses", m.l3.accesses),
        );
        c.ge_u64(
            "mem.dram_demand_flow",
            ("dram_accesses", m.dram_accesses),
            ("l3.misses", m.l3.misses),
        );
        if m.dl1_fast.accesses > 0 {
            // Asymmetric DL1: the slow partition is probed exactly on
            // fast misses, and promotions are a subset of slow hits.
            c.eq_u64(
                "mem.asym_probe_flow",
                ("dl1_fast.misses", m.dl1_fast.misses),
                ("dl1_slow.accesses", m.dl1_slow.accesses),
            );
            c.le_u64(
                "mem.asym_promotions",
                ("promotions", m.promotions),
                ("dl1_slow.hits", m.dl1_slow.hits),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            accesses: 10,
            writes: 2,
            hits: 7,
            misses: 3,
            fills: 3,
            writebacks: 1,
        };
        let b = CacheStats {
            accesses: 5,
            writes: 1,
            hits: 5,
            misses: 0,
            fills: 0,
            writebacks: 0,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 12);
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dl1_accessors_pick_populated_side() {
        let mut m = MemStats::default();
        m.dl1_slow.accesses = 100;
        m.dl1_slow.hits = 90;
        assert_eq!(m.dl1_accesses(), 100);
        assert!((m.dl1_hit_rate() - 0.9).abs() < 1e-12);

        let mut asym = MemStats::default();
        asym.dl1_fast.accesses = 100;
        asym.dl1_fast.hits = 60;
        asym.dl1_slow.accesses = 40;
        asym.dl1_slow.hits = 30;
        assert_eq!(asym.dl1_accesses(), 100);
        assert!((asym.dl1_hit_rate() - 0.9).abs() < 1e-12);
    }

    /// Regression: warmup snapshots taken mid-flight can exceed the final
    /// count (e.g. fills for in-flight lines); release builds used to wrap.
    #[test]
    fn minus_saturates_instead_of_wrapping() {
        let mut a = MemStats::default();
        a.l2.fills = 3;
        let mut snap = MemStats::default();
        snap.l2.fills = 5;
        snap.promotions = 1;
        let d = a.minus(&snap);
        assert_eq!(d.l2.fills, 0, "nested counters saturate");
        assert_eq!(d.promotions, 0, "scalar counters saturate");
    }

    #[test]
    fn iter_flattens_the_hierarchy_with_dotted_names() {
        let mut m = MemStats::default();
        m.il1.accesses = 7;
        m.promotions = 3;
        let pairs: Vec<(String, u64)> = m.iter().collect();
        assert_eq!(pairs.len(), 5 * 6 + 2, "5 cache levels x 6 + 2 scalars");
        assert_eq!(pairs[0], ("il1.accesses".to_string(), 7));
        assert!(pairs.contains(&("promotions".to_string(), 3)));
        assert!(pairs.iter().any(|(n, _)| n == "l3.writebacks"));
        assert_eq!(m.get("il1.accesses"), Some(7));
    }
}
