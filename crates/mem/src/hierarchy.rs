//! The private three-level cache hierarchy of one core.
//!
//! Composition per Table III: 32 KB IL1, 32 KB DL1 (plain or asymmetric),
//! 256 KB L2, a 2 MB L3 slice, then DRAM. Latency semantics follow the
//! table's *round-trip* numbers: a hit at level X costs X's round-trip
//! cycles from the core's perspective (the table's per-config values
//! already fold in the traversal of the levels above), and a DRAM access
//! additionally pays the L3 round trip.
//!
//! Writebacks propagate off the critical path: a dirty DL1 victim is
//! installed in L2, a dirty L2 victim in L3, and a dirty L3 victim is
//! counted as a DRAM write. All such events are visible to the power model
//! through [`MemStats`].
//!
//! For multicore runs, each core owns a 2 MB address-partitioned slice of
//! the shared L3 (NUCA-style). The synthetic workloads partition their data
//! per thread (as SPLASH-2 does), so cross-slice traffic is negligible; the
//! ring cost is already part of the L3 round-trip latency, and the MESI
//! directory of [`crate::coherence`] guards the rare shared line.

use crate::asymmetric::{AsymHit, AsymmetricCache};
use crate::cache::{Cache, CacheConfig};
use crate::dram::Dram;
use crate::stats::MemStats;

/// Which level satisfied a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// CMOS fast way of an asymmetric DL1.
    Dl1Fast,
    /// DL1 (or the slow partition of an asymmetric DL1).
    Dl1,
    /// Private L2.
    L2,
    /// L3 slice.
    L3,
    /// Main memory.
    Dram,
}

impl HitLevel {
    /// `true` when the access missed the DL1 (either partition) and had
    /// to go at least to the private L2. The cycle-attribution profiler
    /// splits demand-load latency histograms on this boundary: DL1 hits
    /// are pipeline-absorbing, everything deeper shows up as
    /// `mem-latency` cycles.
    pub fn is_dl1_miss(self) -> bool {
        !matches!(self, HitLevel::Dl1Fast | HitLevel::Dl1)
    }
}

/// Outcome of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Total round-trip latency in core cycles.
    pub latency: u32,
    /// The level that satisfied the request.
    pub level: HitLevel,
}

/// The data-cache organization.
#[derive(Debug, Clone)]
pub enum DataCacheKind {
    /// Conventional single-latency DL1.
    Plain(Cache),
    /// The AdvHet asymmetric DL1 (or its all-CMOS Enh variant).
    Asymmetric(AsymmetricCache),
}

/// Geometry and timing for a core's private hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Instruction L1 (round-trip latency in `latency`).
    pub il1: CacheConfig,
    /// Data L1 specification.
    pub dl1: DataCacheSpec,
    /// Private L2 (round trip).
    pub l2: CacheConfig,
    /// L3 slice (round trip).
    pub l3: CacheConfig,
    /// Core clock, for the DRAM cycle conversion.
    pub clock_hz: f64,
}

/// DL1 specification within [`HierarchyConfig`].
#[derive(Debug, Clone)]
pub enum DataCacheSpec {
    /// Conventional DL1 with the given geometry/latency.
    Plain(CacheConfig),
    /// Asymmetric DL1: fast partition + slow partition (slow `latency` is
    /// the additional cycles past the fast probe).
    Asymmetric {
        /// CMOS fast way.
        fast: CacheConfig,
        /// TFET (or slower CMOS) remaining ways.
        slow: CacheConfig,
    },
}

/// One core's private memory hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    il1: Cache,
    dl1: DataCacheKind,
    l2: Cache,
    l3: Cache,
    dram: Dram,
    dram_writes: u64,
}

impl Hierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        let dl1 = match cfg.dl1 {
            DataCacheSpec::Plain(c) => DataCacheKind::Plain(Cache::new(c)),
            DataCacheSpec::Asymmetric { fast, slow } => {
                DataCacheKind::Asymmetric(AsymmetricCache::new(fast, slow))
            }
        };
        Hierarchy {
            il1: Cache::new(cfg.il1),
            dl1,
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dram: Dram::at_clock(cfg.clock_hz),
            dram_writes: 0,
        }
    }

    /// Instruction fetch at `pc`; returns the fetch latency in cycles.
    pub fn fetch(&mut self, pc: u64) -> u32 {
        let out = self.il1.access(pc, false);
        if out.hit {
            self.il1.config().latency
        } else {
            // Instruction misses walk the same lower levels.
            self.lower_levels(pc, false).latency
        }
    }

    /// Data load at `addr`.
    pub fn load(&mut self, addr: u64) -> DataAccess {
        self.data_access(addr, false)
    }

    /// Data store at `addr` (write-allocate; latency reported for LSQ
    /// modeling even though stores retire from a store buffer).
    pub fn store(&mut self, addr: u64) -> DataAccess {
        self.data_access(addr, true)
    }

    fn data_access(&mut self, addr: u64, is_write: bool) -> DataAccess {
        match &mut self.dl1 {
            DataCacheKind::Plain(dl1) => {
                let lat = dl1.config().latency;
                let out = dl1.access(addr, is_write);
                if let Some(victim) = out.writeback {
                    self.writeback_to_l2(victim);
                }
                if out.hit {
                    DataAccess {
                        latency: lat,
                        level: HitLevel::Dl1,
                    }
                } else {
                    self.lower_levels(addr, is_write)
                }
            }
            DataCacheKind::Asymmetric(asym) => {
                let out = asym.access(addr, is_write);
                if let Some(victim) = out.writeback {
                    self.writeback_to_l2(victim);
                }
                match out.hit {
                    AsymHit::Fast => DataAccess {
                        latency: out.latency,
                        level: HitLevel::Dl1Fast,
                    },
                    AsymHit::Slow => DataAccess {
                        latency: out.latency,
                        level: HitLevel::Dl1,
                    },
                    AsymHit::Miss => self.lower_levels(addr, is_write),
                }
            }
        }
    }

    /// Walks L2 -> L3 -> DRAM for a demand miss; returns the round trip.
    fn lower_levels(&mut self, addr: u64, _is_write: bool) -> DataAccess {
        let l2_out = self.l2.access(addr, false);
        if let Some(victim) = l2_out.writeback {
            self.writeback_to_l3(victim);
        }
        if l2_out.hit {
            return DataAccess {
                latency: self.l2.config().latency,
                level: HitLevel::L2,
            };
        }
        let l3_out = self.l3.access(addr, false);
        if l3_out.writeback.is_some() {
            self.dram_writes += 1;
        }
        if l3_out.hit {
            return DataAccess {
                latency: self.l3.config().latency,
                level: HitLevel::L3,
            };
        }
        let dram_lat = self.dram.access();
        DataAccess {
            latency: self.l3.config().latency + dram_lat,
            level: HitLevel::Dram,
        }
    }

    fn writeback_to_l2(&mut self, victim: u64) {
        if let Some(l2_victim) = self.l2.fill(victim, true) {
            self.writeback_to_l3(l2_victim);
        }
    }

    fn writeback_to_l3(&mut self, victim: u64) {
        if self.l3.fill(victim, true).is_some() {
            self.dram_writes += 1;
        }
    }

    /// Pre-warms the hierarchy with a working set starting at `base`:
    /// fills each level (inclusively) with as much of the leading portion
    /// of the set as it can hold. Models the steady state a long-running
    /// application reaches, without paying millions of warm-up
    /// instructions; compulsory misses on data that exceeds a level's
    /// capacity still occur naturally.
    pub fn prewarm(&mut self, base: u64, working_set_bytes: u64) {
        let line = self.l3.config().line_bytes;
        let fill_lines = |cache: &mut Cache, bytes: u64| {
            let n = bytes.min(working_set_bytes) / line;
            cache.prewarm_sequential(base, n);
        };
        let l3_capacity = self.l3.config().size_bytes;
        let l2_capacity = self.l2.config().size_bytes;
        fill_lines(&mut self.l3, l3_capacity);
        fill_lines(&mut self.l2, l2_capacity);
        match &mut self.dl1 {
            DataCacheKind::Plain(dl1) => {
                let cap = dl1.config().size_bytes;
                fill_lines(dl1, cap);
            }
            DataCacheKind::Asymmetric(asym) => {
                asym.prewarm(base, working_set_bytes);
            }
        }
    }

    /// Event counters for the power model.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats {
            il1: *self.il1.stats(),
            l2: *self.l2.stats(),
            l3: *self.l3.stats(),
            dram_accesses: self.dram.accesses() + self.dram_writes,
            ..MemStats::default()
        };
        match &self.dl1 {
            DataCacheKind::Plain(dl1) => {
                s.dl1_slow = *dl1.stats();
            }
            DataCacheKind::Asymmetric(asym) => {
                s.dl1_fast = *asym.fast_stats();
                s.dl1_slow = *asym.slow_stats();
                s.promotions = asym.promotions();
            }
        }
        s
    }

    /// The DL1 organization (for inspection in tests/reports).
    pub fn dl1(&self) -> &DataCacheKind {
        &self.dl1
    }

    /// Validates the whole private hierarchy: the cross-level demand-flow
    /// identities over [`Hierarchy::stats`] plus the structural invariants
    /// of every level (set occupancy, tag uniqueness, DL1 exclusivity).
    pub fn validate(&self, checker: &mut hetsim_check::Checker) {
        crate::stats::validate_mem_stats(&self.stats(), checker);
        checker.scoped("levels", |c| {
            self.il1.validate("il1", c);
            match &self.dl1 {
                DataCacheKind::Plain(dl1) => dl1.validate("dl1", c),
                DataCacheKind::Asymmetric(asym) => c.scoped("dl1", |c| asym.validate(c)),
            }
            self.l2.validate("l2", c);
            self.l3.validate("l3", c);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(plain_dl1: bool) -> HierarchyConfig {
        HierarchyConfig {
            il1: CacheConfig::new(32 * 1024, 2, 64, 2),
            dl1: if plain_dl1 {
                DataCacheSpec::Plain(CacheConfig::new(32 * 1024, 8, 64, 2))
            } else {
                DataCacheSpec::Asymmetric {
                    fast: CacheConfig::new(4 * 1024, 1, 64, 1),
                    slow: CacheConfig::new(28 * 1024, 7, 64, 4),
                }
            },
            l2: CacheConfig::new(256 * 1024, 8, 64, 8),
            l3: CacheConfig::new(2 * 1024 * 1024, 16, 64, 32),
            clock_hz: 2.0e9,
        }
    }

    #[test]
    fn validate_is_clean_after_mixed_traffic() {
        for plain in [true, false] {
            let mut h = Hierarchy::new(cfg(plain));
            h.prewarm(0, 16 * 1024);
            for i in 0..4_000u64 {
                h.fetch(0x100_0000 + (i % 512) * 16);
                h.load((i * 89) % (256 * 1024));
                if i % 3 == 0 {
                    h.store((i * 53) % (64 * 1024));
                }
            }
            let mut checker = hetsim_check::Checker::new();
            h.validate(&mut checker);
            assert!(
                checker.is_clean(),
                "plain={plain}: {:?}",
                checker.violations()
            );
            assert!(checker.checks_run() > 20);
        }
    }

    #[test]
    fn validate_flags_broken_conservation() {
        let mut h = Hierarchy::new(cfg(true));
        h.load(0x40);
        let mut stats = h.stats();
        stats.l2.hits += 1; // break hits + misses == accesses
        let mut checker = hetsim_check::Checker::new();
        crate::stats::validate_mem_stats(&stats, &mut checker);
        let v = checker
            .violations()
            .iter()
            .find(|v| v.invariant == "mem.hit_miss_conservation")
            .expect("perturbed counter must be caught");
        assert_eq!(v.path, "mem/l2");
    }

    #[test]
    fn cold_load_goes_to_dram_then_warms_up() {
        let mut h = Hierarchy::new(cfg(true));
        let first = h.load(0x1_0000);
        assert_eq!(first.level, HitLevel::Dram);
        assert_eq!(first.latency, 32 + 100);
        let second = h.load(0x1_0000);
        assert_eq!(second.level, HitLevel::Dl1);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn l2_hit_after_dl1_eviction() {
        let mut h = Hierarchy::new(cfg(true));
        h.load(0x0);
        // Evict from the 8-way DL1 set 0 by loading 8 more conflicting
        // lines. A 4 KB stride aliases in the 64-set DL1 but spreads over
        // the 512-set L2, so the victim stays L2-resident.
        for i in 1..=8u64 {
            h.load(i * 4 * 1024);
        }
        let again = h.load(0x0);
        assert_eq!(again.level, HitLevel::L2);
        assert_eq!(again.latency, 8);
    }

    #[test]
    fn asymmetric_fast_hit_is_one_cycle() {
        let mut h = Hierarchy::new(cfg(false));
        h.load(0x40);
        let hit = h.load(0x40);
        assert_eq!(hit.level, HitLevel::Dl1Fast);
        assert_eq!(hit.latency, 1);
    }

    #[test]
    fn asymmetric_slow_hit_is_five_cycles() {
        let mut h = Hierarchy::new(cfg(false));
        h.load(0x0000); // fills fast slot
        h.load(0x1000); // same fast set (4 KB apart): demotes 0x0000
        let slow = h.load(0x0000);
        assert_eq!(slow.level, HitLevel::Dl1);
        assert_eq!(slow.latency, 5);
    }

    #[test]
    fn stores_allocate_and_dirty_lines_write_back() {
        let mut h = Hierarchy::new(cfg(true));
        h.store(0x0);
        // Push the dirty line out of DL1 (4 KB stride: DL1-conflicting,
        // L2-friendly).
        for i in 1..=8u64 {
            h.load(i * 4 * 1024);
        }
        // The dirty line should be in L2 now; loading it back hits L2.
        assert_eq!(h.load(0x0).level, HitLevel::L2);
        let s = h.stats();
        assert!(s.dl1_slow.writebacks >= 1, "dirty DL1 victim written back");
    }

    #[test]
    fn fetch_hits_after_warmup() {
        let mut h = Hierarchy::new(cfg(true));
        let cold = h.fetch(0x4000_0000);
        assert!(cold > 2);
        let warm = h.fetch(0x4000_0000);
        assert_eq!(warm, 2);
    }

    #[test]
    fn stats_collect_all_levels() {
        let mut h = Hierarchy::new(cfg(false));
        for i in 0..1000u64 {
            h.load(i * 64);
        }
        let s = h.stats();
        assert_eq!(s.dl1_accesses(), 1000);
        assert!(s.l2.accesses > 0);
        assert!(s.l3.accesses > 0);
        assert!(s.dram_accesses > 0);
    }

    #[test]
    fn working_set_in_l3_does_not_touch_dram_after_warmup() {
        let mut h = Hierarchy::new(cfg(true));
        let lines = 1024u64; // 64 KB working set
        for pass in 0..3 {
            for i in 0..lines {
                h.load(i * 64);
            }
            if pass == 0 {
                let cold_drams = h.stats().dram_accesses;
                assert!(cold_drams > 0);
            }
        }
        let s = h.stats();
        // After the first pass everything fits in L2; DRAM count stays flat.
        assert_eq!(s.dram_accesses, 1024);
    }
}
