//! Fixed-latency DRAM model (paper Table III: 50 ns round trip).
//!
//! The paper models main memory as a flat 50 ns round trip. Because the
//! simulators count in core cycles, the cycle cost depends on the core
//! clock — 100 cycles at the 2 GHz CMOS clock, 50 cycles for the 1 GHz
//! BaseTFET core, and so on.

/// DRAM round-trip latency used throughout the paper (seconds).
pub const DRAM_ROUND_TRIP_S: f64 = 50.0e-9;

/// Fixed-latency DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dram {
    latency_cycles: u32,
    accesses: u64,
}

impl Dram {
    /// DRAM as seen by a core clocked at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn at_clock(clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive, got {clock_hz}");
        let latency_cycles = (DRAM_ROUND_TRIP_S * clock_hz).round() as u32;
        Dram {
            latency_cycles: latency_cycles.max(1),
            accesses: 0,
        }
    }

    /// Performs one access; returns the round-trip latency in core cycles.
    pub fn access(&mut self) -> u32 {
        self.accesses += 1;
        self.latency_cycles
    }

    /// Round-trip latency in core cycles.
    pub fn latency_cycles(&self) -> u32 {
        self.latency_cycles
    }

    /// Number of accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_scale_with_clock() {
        assert_eq!(Dram::at_clock(2.0e9).latency_cycles(), 100);
        assert_eq!(Dram::at_clock(1.0e9).latency_cycles(), 50);
        assert_eq!(Dram::at_clock(2.5e9).latency_cycles(), 125);
    }

    #[test]
    fn access_counts() {
        let mut d = Dram::at_clock(2.0e9);
        assert_eq!(d.access(), 100);
        assert_eq!(d.access(), 100);
        assert_eq!(d.accesses(), 2);
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn zero_clock_panics() {
        let _ = Dram::at_clock(0.0);
    }
}
