//! MESI directory for the shared L3 (paper Table III: "Ring with MESI
//! directory-based protocol").
//!
//! The directory tracks, per line, which cores hold it and in what state.
//! The multicore simulator consults it on every L2 miss: accesses that
//! would hit a remote core's private cache cost extra ring hops and may
//! force downgrades or invalidations. SPLASH-2-style partitioned workloads
//! generate little sharing, but the protocol is implemented fully and
//! verified by its own tests.

use std::collections::HashMap;

/// MESI line states as recorded at the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// One core holds the line, possibly dirty.
    ModifiedOrExclusive,
    /// One or more cores hold clean copies.
    Shared,
}

/// What the requesting core must do beyond the plain L3 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceAction {
    /// Extra ring/network cycles for remote snoops or forwards.
    pub extra_latency: u32,
    /// Number of remote copies invalidated.
    pub invalidations: u32,
    /// Whether dirty data was forwarded from a remote owner.
    pub owner_forward: bool,
}

impl CoherenceAction {
    /// No remote involvement.
    pub const NONE: CoherenceAction = CoherenceAction {
        extra_latency: 0,
        invalidations: 0,
        owner_forward: false,
    };
}

/// Ring-hop cost charged per remote intervention (cycles).
pub const RING_HOP_CYCLES: u32 = 8;

/// Per-line sharer tracking.
#[derive(Debug, Clone)]
struct DirEntry {
    state: LineState,
    /// Bitmask of sharer cores.
    sharers: u64,
}

/// The MESI directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    lines: HashMap<u64, DirEntry>,
    /// Total invalidations issued.
    pub invalidations: u64,
    /// Total dirty-owner forwards.
    pub forwards: u64,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Registers core `core`'s read of `line_addr`, returning the required
    /// coherence action.
    pub fn read(&mut self, line_addr: u64, core: u32) -> CoherenceAction {
        let bit = 1u64 << core;
        match self.lines.get_mut(&line_addr) {
            None => {
                self.lines.insert(
                    line_addr,
                    DirEntry {
                        state: LineState::ModifiedOrExclusive,
                        sharers: bit,
                    },
                );
                CoherenceAction::NONE
            }
            Some(entry) => {
                if entry.sharers == bit {
                    // Already the sole holder.
                    return CoherenceAction::NONE;
                }
                let action = match entry.state {
                    LineState::ModifiedOrExclusive => {
                        // Remote owner must forward and downgrade.
                        self.forwards += 1;
                        CoherenceAction {
                            extra_latency: RING_HOP_CYCLES,
                            invalidations: 0,
                            owner_forward: true,
                        }
                    }
                    LineState::Shared => CoherenceAction::NONE,
                };
                entry.state = LineState::Shared;
                entry.sharers |= bit;
                action
            }
        }
    }

    /// Registers core `core`'s write of `line_addr`, returning the required
    /// coherence action (invalidating all other sharers).
    pub fn write(&mut self, line_addr: u64, core: u32) -> CoherenceAction {
        let bit = 1u64 << core;
        match self.lines.get_mut(&line_addr) {
            None => {
                self.lines.insert(
                    line_addr,
                    DirEntry {
                        state: LineState::ModifiedOrExclusive,
                        sharers: bit,
                    },
                );
                CoherenceAction::NONE
            }
            Some(entry) => {
                if entry.sharers == bit {
                    entry.state = LineState::ModifiedOrExclusive;
                    return CoherenceAction::NONE;
                }
                let others = (entry.sharers & !bit).count_ones();
                let owner_forward = entry.state == LineState::ModifiedOrExclusive;
                if owner_forward {
                    self.forwards += 1;
                }
                self.invalidations += u64::from(others);
                entry.state = LineState::ModifiedOrExclusive;
                entry.sharers = bit;
                CoherenceAction {
                    extra_latency: RING_HOP_CYCLES * others.max(1),
                    invalidations: others,
                    owner_forward,
                }
            }
        }
    }

    /// Removes a line (L3 eviction): all sharers are implicitly
    /// invalidated by inclusion.
    pub fn evict(&mut self, line_addr: u64) -> u32 {
        match self.lines.remove(&line_addr) {
            None => 0,
            Some(entry) => {
                let n = entry.sharers.count_ones();
                self.invalidations += u64::from(n);
                n
            }
        }
    }

    /// Current state of a line, if tracked.
    pub fn state(&self, line_addr: u64) -> Option<LineState> {
        self.lines.get(&line_addr).map(|e| e.state)
    }

    /// Number of cores currently holding `line_addr`.
    pub fn sharer_count(&self, line_addr: u64) -> u32 {
        self.lines
            .get(&line_addr)
            .map_or(0, |e| e.sharers.count_ones())
    }

    /// Iterates over every tracked line as `(line_addr, state,
    /// sharer_count)` — the inspection surface the invariant layer
    /// sweeps (iteration order is unspecified).
    pub fn lines(&self) -> impl Iterator<Item = (u64, LineState, u32)> + '_ {
        self.lines
            .iter()
            .map(|(&addr, e)| (addr, e.state, e.sharers.count_ones()))
    }

    /// Validates the MESI directory invariants over every tracked line:
    /// a `ModifiedOrExclusive` line has exactly one sharer (the
    /// single-M-owner invariant) and every tracked line has at least
    /// one sharer (empty entries must be evicted, not kept).
    pub fn validate(&self, checker: &mut hetsim_check::Checker) {
        checker.scoped("directory", |c| {
            for (addr, state, sharers) in self.lines() {
                match state {
                    LineState::ModifiedOrExclusive => c.eq_u64(
                        "mem.mesi_single_owner",
                        (&format!("sharers({addr:#x})"), u64::from(sharers)),
                        ("1", 1),
                    ),
                    LineState::Shared => c.ge_u64(
                        "mem.mesi_shared_nonempty",
                        (&format!("sharers({addr:#x})"), u64::from(sharers)),
                        ("1", 1),
                    ),
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_is_exclusive() {
        let mut d = Directory::new();
        assert_eq!(d.read(0x40, 0), CoherenceAction::NONE);
        assert_eq!(d.state(0x40), Some(LineState::ModifiedOrExclusive));
        assert_eq!(d.sharer_count(0x40), 1);
    }

    #[test]
    fn second_reader_downgrades_owner() {
        let mut d = Directory::new();
        d.read(0x40, 0);
        let a = d.read(0x40, 1);
        assert!(a.owner_forward);
        assert_eq!(a.extra_latency, RING_HOP_CYCLES);
        assert_eq!(d.state(0x40), Some(LineState::Shared));
        assert_eq!(d.sharer_count(0x40), 2);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(0x40, 0);
        d.read(0x40, 1);
        d.read(0x40, 2);
        let a = d.write(0x40, 0);
        assert_eq!(a.invalidations, 2);
        assert_eq!(d.sharer_count(0x40), 1);
        assert_eq!(d.state(0x40), Some(LineState::ModifiedOrExclusive));
    }

    #[test]
    fn sole_owner_upgrades_silently() {
        let mut d = Directory::new();
        d.read(0x40, 3);
        let a = d.write(0x40, 3);
        assert_eq!(a, CoherenceAction::NONE);
        assert_eq!(d.state(0x40), Some(LineState::ModifiedOrExclusive));
    }

    #[test]
    fn write_to_modified_line_forwards_from_owner() {
        let mut d = Directory::new();
        d.write(0x40, 0);
        let a = d.write(0x40, 1);
        assert!(a.owner_forward);
        assert_eq!(a.invalidations, 1);
        assert_eq!(d.sharer_count(0x40), 1);
    }

    #[test]
    fn eviction_invalidates_everyone() {
        let mut d = Directory::new();
        d.read(0x40, 0);
        d.read(0x40, 1);
        assert_eq!(d.evict(0x40), 2);
        assert_eq!(d.state(0x40), None);
        assert_eq!(d.invalidations, 2);
    }

    #[test]
    fn disjoint_lines_do_not_interact() {
        let mut d = Directory::new();
        d.write(0x40, 0);
        let a = d.write(0x80, 1);
        assert_eq!(a, CoherenceAction::NONE);
        assert_eq!(d.sharer_count(0x40), 1);
        assert_eq!(d.sharer_count(0x80), 1);
    }
}
