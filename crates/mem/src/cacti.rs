//! CACTI-lite: an analytical SRAM access-time/energy model.
//!
//! The paper justifies the asymmetric DL1's timing with CACTI: "CACTI
//! analysis shows that the access latency of the FastCache is about one
//! third of the base 32KB DL1" (Section IV-C1). This module provides the
//! corresponding analytical model so those constants are *derived* rather
//! than asserted: a classic decomposition of an SRAM access into decoder,
//! wordline, bitline, comparator and output-driver terms, with wire terms
//! growing with the square root of the array area and energy growing with
//! the bits activated per access (all ways of a set-associative read).
//!
//! The model is calibrated in relative terms (the paper's evaluation only
//! uses latency *cycles* and energy *ratios*); the absolute scale is
//! anchored to the 15 nm Table I data of `hetsim-device`.

/// Geometry of an SRAM array to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramGeometry {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways read in parallel).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl SramGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry.
    pub fn new(size_bytes: u64, ways: u32, line_bytes: u64) -> Self {
        assert!(
            size_bytes >= u64::from(ways) * line_bytes,
            "at least one set"
        );
        assert!(ways >= 1 && line_bytes >= 1);
        SramGeometry {
            size_bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * self.line_bytes)
    }
}

/// Analytical access-time/energy estimates for one array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramEstimate {
    /// Access time (ps).
    pub access_ps: f64,
    /// Dynamic energy per read access (pJ).
    pub read_energy_pj: f64,
    /// Leakage power (mW), proportional to the bit count.
    pub leakage_mw: f64,
}

/// Technology scale anchors (relative model, 15 nm flavored).
mod k {
    /// Fixed decoder + sense overhead (ps).
    pub const T_FIXED: f64 = 55.0;
    /// Wire/bitline delay per sqrt(byte) (ps).
    pub const T_WIRE: f64 = 2.6;
    /// Way-comparison/mux delay per way (ps).
    pub const T_WAY: f64 = 6.0;
    /// Fixed access energy (pJ).
    pub const E_FIXED: f64 = 1.2;
    /// Energy per activated way-line (pJ per 64 B way read).
    pub const E_WAY: f64 = 2.1;
    /// Wire energy per sqrt(byte) (pJ).
    pub const E_WIRE: f64 = 0.055;
    /// Leakage per KiB (mW).
    pub const L_PER_KIB: f64 = 0.10;
}

/// Estimates access time, energy and leakage for `geometry`.
///
/// # Example
///
/// ```
/// use hetsim_mem::cacti::{estimate, SramGeometry};
///
/// let dl1 = estimate(SramGeometry::new(32 * 1024, 8, 64));
/// let fast = estimate(SramGeometry::new(4 * 1024, 1, 64));
/// // The paper's Section IV-C1 CACTI claim: the 4 KB fast way takes about
/// // a third of the 32 KB DL1's access time.
/// let ratio = fast.access_ps / dl1.access_ps;
/// assert!(ratio < 0.45);
/// ```
pub fn estimate(geometry: SramGeometry) -> SramEstimate {
    let bytes = geometry.size_bytes as f64;
    let ways = f64::from(geometry.ways);
    let wire = bytes.sqrt();

    // A set-associative read activates every way of the set plus the tag
    // match; wires grow with the array's linear dimension.
    let access_ps = k::T_FIXED + k::T_WIRE * wire + k::T_WAY * ways;
    let read_energy_pj =
        k::E_FIXED + k::E_WAY * ways * (geometry.line_bytes as f64 / 64.0) + k::E_WIRE * wire;
    let leakage_mw = k::L_PER_KIB * bytes / 1024.0;

    SramEstimate {
        access_ps,
        read_energy_pj,
        leakage_mw,
    }
}

/// Latency of `geometry` in cycles at `clock_hz`, rounded up.
pub fn cycles_at(geometry: SramGeometry, clock_hz: f64) -> u32 {
    let ps = estimate(geometry).access_ps;
    (ps * 1e-12 * clock_hz).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dl1() -> SramEstimate {
        estimate(SramGeometry::new(32 * 1024, 8, 64))
    }

    fn fast_way() -> SramEstimate {
        estimate(SramGeometry::new(4 * 1024, 1, 64))
    }

    #[test]
    fn fast_way_is_about_a_third_of_dl1_latency() {
        // Section IV-C1's CACTI claim.
        let r = fast_way().access_ps / dl1().access_ps;
        assert!((0.25..0.45).contains(&r), "fast/DL1 latency ratio {r}");
    }

    #[test]
    fn fast_way_energy_is_a_small_fraction_of_dl1() {
        let r = fast_way().read_energy_pj / dl1().read_energy_pj;
        assert!((0.10..0.35).contains(&r), "fast/DL1 energy ratio {r}");
    }

    #[test]
    fn table_iii_latency_cycles_are_consistent_at_2ghz() {
        // The model should place the Table III structures in the right
        // cycle bands at 2 GHz: DL1 ~1-2, L2 ~3-6 (array only; the round
        // trip adds pipeline/queue cycles), L3 slice ~8-20.
        let dl1 = cycles_at(SramGeometry::new(32 * 1024, 8, 64), 2.0e9);
        let l2 = cycles_at(SramGeometry::new(256 * 1024, 8, 64), 2.0e9);
        let l3 = cycles_at(SramGeometry::new(2 * 1024 * 1024, 16, 64), 2.0e9);
        assert!((1..=2).contains(&dl1), "DL1 array cycles {dl1}");
        assert!((2..=6).contains(&l2), "L2 array cycles {l2}");
        assert!((6..=20).contains(&l3), "L3 array cycles {l3}");
        assert!(dl1 < l2 && l2 < l3);
    }

    #[test]
    fn latency_grows_with_size_and_associativity() {
        let small = estimate(SramGeometry::new(8 * 1024, 2, 64));
        let bigger = estimate(SramGeometry::new(64 * 1024, 2, 64));
        let wider = estimate(SramGeometry::new(8 * 1024, 8, 64));
        assert!(bigger.access_ps > small.access_ps);
        assert!(wider.access_ps > small.access_ps);
    }

    #[test]
    fn energy_scales_with_ways_not_just_size() {
        // Reading an 8-way set burns ~8 way-lines; a direct-mapped array
        // of the same capacity burns one.
        let assoc = estimate(SramGeometry::new(32 * 1024, 8, 64));
        let direct = estimate(SramGeometry::new(32 * 1024, 1, 64));
        assert!(assoc.read_energy_pj > 2.0 * direct.read_energy_pj);
    }

    #[test]
    fn leakage_is_proportional_to_capacity() {
        let a = estimate(SramGeometry::new(32 * 1024, 8, 64));
        let b = estimate(SramGeometry::new(64 * 1024, 8, 64));
        assert!((b.leakage_mw / a.leakage_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn l3_leakage_dominates_the_hierarchy() {
        // Consistent with the power model's unit leakages: the 2 MB L3
        // slice leaks an order of magnitude more than the 32 KB DL1.
        let dl1 = estimate(SramGeometry::new(32 * 1024, 8, 64)).leakage_mw;
        let l3 = estimate(SramGeometry::new(2 * 1024 * 1024, 16, 64)).leakage_mw;
        assert!(l3 > 10.0 * dl1);
    }
}
