//! Regression tests for the `minus` zero boundary: a warmup snapshot can
//! legitimately exceed the final count for in-flight work (e.g. issued
//! but not yet committed at the snapshot), and `sub` fields must
//! saturate at zero instead of wrapping — a wrapped counter in a release
//! build would silently poison every downstream report.

use hetsim_stats::counters;

counters! {
    /// Inner group to prove saturation delegates through nesting.
    pub struct Inner {
        pub accesses: u64,
        pub hits: u64,
    }
}

counters! {
    /// One field per policy combination that `minus` distinguishes.
    pub struct Outer {
        pub committed: u64,
        pub cycles: u64 = max / keep,
        pub inner: Inner,
    }
}

#[test]
fn minus_saturates_at_zero_instead_of_wrapping() {
    let end = Outer {
        committed: 10,
        cycles: 500,
        inner: Inner {
            accesses: 3,
            hits: 0,
        },
    };
    let snapshot = Outer {
        committed: 25, // in-flight work: snapshot ahead of the final count
        cycles: 900,
        inner: Inner {
            accesses: 7,
            hits: 1,
        },
    };
    let window = end.minus(&snapshot);
    assert_eq!(window.committed, 0, "sub field saturates, never wraps");
    assert_eq!(window.inner.accesses, 0, "nested sub field saturates too");
    assert_eq!(window.inner.hits, 0);
    assert_eq!(window.cycles, 500, "keep field retains self's value");
}

#[test]
fn minus_at_the_exact_boundary_is_zero() {
    let s = Outer {
        committed: u64::MAX,
        cycles: 1,
        inner: Inner {
            accesses: 42,
            hits: 42,
        },
    };
    let window = s.minus(&s);
    assert_eq!(window.committed, 0, "x - x == 0 even at u64::MAX");
    assert_eq!(window.inner.accesses, 0);
    assert_eq!(window.cycles, 1, "keep field is immune to the boundary");
}

#[test]
fn minus_of_a_zero_baseline_is_identity_on_sub_fields() {
    let s = Outer {
        committed: 7,
        cycles: 9,
        inner: Inner {
            accesses: 5,
            hits: 2,
        },
    };
    assert_eq!(s.minus(&Outer::default()), s);
}
