//! Property tests for the bounded-bucket [`Histogram`].
//!
//! The runner aggregates per-batch timing histograms into campaign
//! totals, and the dump layer serializes them — so three algebraic
//! properties must hold for the `runner.timing.*` telemetry to be
//! trustworthy:
//!
//! 1. **merge associativity/commutativity** — aggregation order (batch
//!    by batch vs. all at once) cannot change the result;
//! 2. **bucket-count conservation** — the bucket counts always sum to
//!    `count()`, under any interleaving of `record` and `merge` (no
//!    sample is ever dropped or double-counted), and merge conserves
//!    the total;
//! 3. **serde round-trip** — a dump written and re-read is the same
//!    histogram.
//!
//! Saturation (samples near `u64::MAX`, e.g. from a clock bug) must
//! degrade gracefully: clamp, never wrap or panic.

use proptest::prelude::*;

use hetsim_stats::histogram::BUCKETS;
use hetsim_stats::Histogram;
use serde::{Deserialize, Serialize};

/// Arbitrary sample lists, mixing small values with full-range ones so
/// every bucket (including the overflow bucket) gets exercised.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..40).prop_map(|values| {
        values
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i % 2 == 0 { v % 1024 } else { v })
            .collect()
    })
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)` and `a ⊔ b == b ⊔ a`: campaign
    /// aggregation is independent of batch order.
    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (a, b, c) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut left = a;
        left.merge(&b);
        left.merge(&c);

        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);

        prop_assert_eq!(left, right, "associativity");

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba, "commutativity");
    }

    /// Bucket counts are conserved: they sum to `count()` after any
    /// recording sequence, and merging two histograms yields the sum of
    /// their counts (nothing dropped, nothing double-counted).
    #[test]
    fn bucket_counts_are_conserved(a in samples(), b in samples()) {
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        prop_assert_eq!(ha.bucket_counts().iter().sum::<u64>(), ha.count());
        prop_assert_eq!(ha.count(), a.len() as u64);

        let mut merged = ha;
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.bucket_counts().iter().sum::<u64>(), merged.count());
        // Element-wise: each bucket is exactly the sum of its parts.
        for i in 0..BUCKETS {
            prop_assert_eq!(
                merged.bucket_counts()[i],
                ha.bucket_counts()[i] + hb.bucket_counts()[i]
            );
        }
    }

    /// Serialization round-trips exactly, including overflow-bucket
    /// samples and saturated sums.
    #[test]
    fn serde_round_trips(a in samples()) {
        let h = hist_of(&a);
        let back = Histogram::from_value(&h.to_value()).expect("round trip");
        prop_assert_eq!(back, h);
    }

    /// Extreme samples saturate: `sum` clamps at `u64::MAX`, `max`
    /// tracks the true maximum, and every sample still lands in a
    /// bucket.
    #[test]
    fn saturation_degrades_gracefully(small in samples()) {
        let mut h = hist_of(&small);
        let before = h.count();
        h.record(u64::MAX);
        h.record(u64::MAX);
        prop_assert_eq!(h.count(), before + 2);
        prop_assert_eq!(h.sum(), u64::MAX, "sum clamps, never wraps");
        prop_assert_eq!(h.max(), u64::MAX);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }
}
