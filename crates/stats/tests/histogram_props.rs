//! Property tests for the bounded-bucket [`Histogram`].
//!
//! The runner aggregates per-batch timing histograms into campaign
//! totals, and the dump layer serializes them — so three algebraic
//! properties must hold for the `runner.timing.*` telemetry to be
//! trustworthy:
//!
//! 1. **merge associativity/commutativity** — aggregation order (batch
//!    by batch vs. all at once) cannot change the result;
//! 2. **bucket-count conservation** — the bucket counts always sum to
//!    `count()`, under any interleaving of `record` and `merge` (no
//!    sample is ever dropped or double-counted), and merge conserves
//!    the total;
//! 3. **serde round-trip** — a dump written and re-read is the same
//!    histogram.
//!
//! Saturation (samples near `u64::MAX`, e.g. from a clock bug) must
//! degrade gracefully: clamp, never wrap or panic.

use proptest::prelude::*;

use hetsim_stats::histogram::BUCKETS;
use hetsim_stats::Histogram;
use serde::{Deserialize, Serialize};

/// Arbitrary sample lists, mixing small values with full-range ones so
/// every bucket (including the overflow bucket) gets exercised.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..40).prop_map(|values| {
        values
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i % 2 == 0 { v % 1024 } else { v })
            .collect()
    })
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)` and `a ⊔ b == b ⊔ a`: campaign
    /// aggregation is independent of batch order.
    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (a, b, c) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut left = a;
        left.merge(&b);
        left.merge(&c);

        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);

        prop_assert_eq!(left, right, "associativity");

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba, "commutativity");
    }

    /// Bucket counts are conserved: they sum to `count()` after any
    /// recording sequence, and merging two histograms yields the sum of
    /// their counts (nothing dropped, nothing double-counted).
    #[test]
    fn bucket_counts_are_conserved(a in samples(), b in samples()) {
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        prop_assert_eq!(ha.bucket_counts().iter().sum::<u64>(), ha.count());
        prop_assert_eq!(ha.count(), a.len() as u64);

        let mut merged = ha;
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.bucket_counts().iter().sum::<u64>(), merged.count());
        // Element-wise: each bucket is exactly the sum of its parts.
        for i in 0..BUCKETS {
            prop_assert_eq!(
                merged.bucket_counts()[i],
                ha.bucket_counts()[i] + hb.bucket_counts()[i]
            );
        }
    }

    /// Serialization round-trips exactly, including overflow-bucket
    /// samples and saturated sums.
    #[test]
    fn serde_round_trips(a in samples()) {
        let h = hist_of(&a);
        let back = Histogram::from_value(&h.to_value()).expect("round trip");
        prop_assert_eq!(back, h);
    }

    /// Extreme samples saturate: `sum` clamps at `u64::MAX`, `max`
    /// tracks the true maximum, and every sample still lands in a
    /// bucket.
    #[test]
    fn saturation_degrades_gracefully(small in samples()) {
        let mut h = hist_of(&small);
        let before = h.count();
        h.record(u64::MAX);
        h.record(u64::MAX);
        prop_assert_eq!(h.count(), before + 2);
        prop_assert_eq!(h.sum(), u64::MAX, "sum clamps, never wraps");
        prop_assert_eq!(h.max(), u64::MAX);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }

    /// Quantiles are monotone in `q` (p50 ≤ p95 ≤ p99 ≤ max), defined
    /// exactly when the histogram is non-empty, and never undershoot
    /// below the 0-quantile.
    #[test]
    fn quantiles_are_monotone_and_bounded(a in samples()) {
        let h = hist_of(&a);
        if a.is_empty() {
            prop_assert!(h.quantile(0.0).is_none(), "empty has no quantiles");
            prop_assert!(h.quantile(1.0).is_none());
            prop_assert_eq!((h.p50(), h.p95(), h.p99()), (0, 0, 0));
        } else {
            let p50 = h.quantile(0.50).expect("non-empty");
            let p95 = h.quantile(0.95).expect("non-empty");
            let p99 = h.quantile(0.99).expect("non-empty");
            prop_assert!(p50 <= p95, "p50 {p50} <= p95 {p95}");
            prop_assert!(p95 <= p99, "p95 {p95} <= p99 {p99}");
            prop_assert!(p99 <= h.max(), "p99 {p99} clamps to max {}", h.max());
            prop_assert!(
                h.quantile(0.0).expect("non-empty") <= p50,
                "q is monotone from the bottom too"
            );
        }
    }

    /// A single-sample histogram reports that sample's bucket bound
    /// (clamped to the sample itself) at every quantile.
    #[test]
    fn single_sample_quantiles_collapse(v in any::<u64>()) {
        let mut h = Histogram::new();
        h.record(v);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).expect("one sample");
            prop_assert_eq!(est, h.max(), "one sample: every quantile is it");
            prop_assert!(est <= v.saturating_mul(2).max(1), "bucket bound overshoot ≤ 2x");
        }
    }

    /// `record_n(v, n)` is exactly `n` times `record(v)` — the bulk
    /// path the cycle-attribution profiler uses for dead-cycle skips.
    #[test]
    fn record_n_equals_repeated_record(v in any::<u64>(), n in 0u64..200) {
        let mut bulk = Histogram::new();
        bulk.record_n(v, n);
        let mut single = Histogram::new();
        for _ in 0..n {
            single.record(v);
        }
        prop_assert_eq!(bulk, single);
    }
}
