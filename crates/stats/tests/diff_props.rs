//! Property tests for the counter-set diff helpers.
//!
//! The regression-gating layer rests on three algebraic properties of
//! [`hetsim_stats::diff::diff_counters`]:
//!
//! 1. reflexivity — `diff(a, a)` is empty;
//! 2. merge-consistency — for `sum`-policy fields,
//!    `diff(a, merge(a, b))` reports exactly `b`'s non-zero values as
//!    deltas;
//! 3. totality — every name either set enumerates lands in exactly one
//!    diff bucket, so nothing escapes a gate built on the diff.

use proptest::prelude::*;

use hetsim_stats::counters;
use hetsim_stats::diff::diff_counters;

counters! {
    /// Nested group: default (`sum / sub`) policies throughout.
    pub struct L1 {
        /// Accesses.
        pub accesses: u64,
        /// Hits.
        pub hits: u64,
    }
}

counters! {
    /// A struct exercising every policy plus nesting, mirroring the
    /// shapes the simulators declare.
    pub struct PipeStats {
        /// Max-merged, kept on minus.
        pub cycles: u64 = max / keep,
        /// Sum-merged, kept on minus.
        pub committed: u64 = sum / keep,
        /// Default policy: `sum / sub`.
        pub loads: u64,
        /// Default policy: `sum / sub`.
        pub stores: u64,
        /// Nested group (delegates field-wise).
        pub l1: L1,
    }
}

/// Names of the `sum`-merge fields of [`PipeStats`] (everything except
/// the max-merged `cycles`).
const SUM_FIELDS: [&str; 5] = ["committed", "loads", "stores", "l1.accesses", "l1.hits"];

/// One bounded value per [`PipeStats`] counter; bounded so sums stay
/// exact and overflow-free.
fn stats_values() -> impl Strategy<Value = Vec<u64>> {
    let fields = PipeStats::default().iter().count();
    proptest::collection::vec(0u64..(1 << 31), fields)
}

/// Builds a [`PipeStats`] through the name-addressed `set`, the same
/// path telemetry consumers use.
fn stats_from(values: &[u64]) -> PipeStats {
    let mut s = PipeStats::default();
    for ((name, _), v) in PipeStats::default().iter().zip(values) {
        assert!(s.set(&name, *v), "unknown counter {name}");
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `diff(a, a)` is empty for any counter values, and still aligns
    /// every name.
    #[test]
    fn diff_of_a_set_with_itself_is_empty(values in stats_values()) {
        let a = stats_from(&values);
        let d = diff_counters(a.iter(), a.iter());
        prop_assert!(d.is_empty());
        prop_assert_eq!(d.aligned(), values.len());
        let unchanged: Vec<String> = d.unchanged;
        let names: Vec<String> = a.iter().map(|(n, _)| n).collect();
        prop_assert_eq!(unchanged, names, "alignment preserves iter() order");
    }

    /// Diffing a set against `merge(a, b)` recovers `b` exactly on the
    /// sum-policy fields: each such counter with a non-zero `b` value
    /// appears as a changed entry whose delta is `b`'s value.
    #[test]
    fn diff_against_merge_recovers_the_merged_in_values(
        a_values in stats_values(),
        b_values in stats_values(),
    ) {
        let a = stats_from(&a_values);
        let b = stats_from(&b_values);
        let mut merged = a;
        merged.merge(&b);
        let d = diff_counters(a.iter(), merged.iter());
        prop_assert!(d.only_in_baseline.is_empty(), "same struct, same names");
        prop_assert!(d.only_in_candidate.is_empty());
        for field in SUM_FIELDS {
            let contribution = b.get(field).expect("known field");
            match d.changed.iter().find(|c| c.name == field) {
                Some(c) => prop_assert_eq!(
                    c.delta(),
                    i128::from(contribution),
                    "sum-policy field {} must grow by exactly b's value",
                    field
                ),
                None => prop_assert_eq!(
                    contribution, 0,
                    "sum-policy field {} unchanged only when b contributed 0",
                    field
                ),
            }
        }
        // `cycles` merges by max: it changes iff b's value exceeds a's.
        let cycles_changed = d.changed.iter().any(|c| c.name == "cycles");
        prop_assert_eq!(cycles_changed, b.cycles > a.cycles);
    }

    /// Name alignment is total over `iter()`: every name of either set
    /// lands in exactly one bucket, even for sets of different shapes.
    #[test]
    fn alignment_is_total_over_iter(
        values in stats_values(),
        group_values in proptest::collection::vec(0u64..(1 << 31), 2),
    ) {
        let whole = stats_from(&values);
        let group = L1 {
            accesses: group_values[0],
            hits: group_values[1],
        };
        // Two different shapes: the full struct vs just its L1 group
        // (whose names lack the `l1.` prefix, so they never collide).
        let d = diff_counters(whole.iter(), group.iter());
        let baseline_names = whole.iter().count();
        let candidate_names = group.iter().count();
        prop_assert_eq!(
            d.aligned() + d.only_in_baseline.len(),
            baseline_names,
            "every baseline name is classified exactly once"
        );
        prop_assert_eq!(
            d.aligned() + d.only_in_candidate.len(),
            candidate_names,
            "every candidate name is classified exactly once"
        );
        prop_assert!(d.changed.is_empty() && d.unchanged.is_empty(),
            "disjoint name spaces align nothing");
    }
}
