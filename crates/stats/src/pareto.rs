//! Pareto-dominance primitives for multi-objective minimization.
//!
//! The design-space exploration engine (`hetcore::explore`) ranks
//! candidate designs by several simultaneous objectives — execution
//! time, energy, ED² — none of which can be traded for another by a
//! scalar weight without baking a policy into the tool. The standard
//! alternative is the Pareto frontier: the set of evaluated points no
//! other point beats on *every* objective at once.
//!
//! This module holds the two primitives the engine (and its property
//! tests) build on:
//!
//! * [`dominates`] — the textbook partial order: `a` dominates `b` when
//!   `a` is no worse on every objective and strictly better on at least
//!   one. All objectives are minimized; callers negate anything they
//!   want maximized.
//! * [`frontier_indices`] — indices of the non-dominated points of a
//!   set, deduplicated (exact objective ties keep the earliest index)
//!   and returned in input order.
//!
//! Both are deliberately tiny and total: no floats are compared through
//! tolerances (the simulators are deterministic, so equal means equal),
//! and NaN objectives are rejected loudly rather than silently
//! poisoning the order.

/// Returns `true` when `a` Pareto-dominates `b`: `a` is ≤ `b` on every
/// objective and < on at least one. Objectives are minimized.
///
/// Identical vectors do not dominate each other (the relation is
/// irreflexive), so mutual non-dominance — not a panic or an arbitrary
/// winner — is the outcome for exact ties.
///
/// # Panics
///
/// Panics if the two slices have different lengths or either contains a
/// NaN: an incomparable objective would make the "frontier" depend on
/// evaluation order, which the exploration engine's determinism
/// guarantee cannot absorb.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(
        a.len(),
        b.len(),
        "dominance requires equal objective arity ({} vs {})",
        a.len(),
        b.len()
    );
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        assert!(!x.is_nan() && !y.is_nan(), "NaN objective is not orderable");
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal points of `points`, in input order.
///
/// A point is on the frontier when no other point dominates it *and* no
/// earlier point has exactly the same objective vector — duplicates
/// collapse to their first occurrence, so the frontier is a set even
/// when the input is not. The result is invariant under permutation of
/// the input (up to the index relabeling the permutation itself
/// implies): membership depends only on the multiset of points.
///
/// O(n²) pairwise scan — exploration budgets are tens to thousands of
/// points, far below where divide-and-conquer frontiers pay off.
///
/// # Panics
///
/// Panics on mixed objective arities or NaN objectives, as
/// [`dominates`] does.
pub fn frontier_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut frontier = Vec::new();
    'candidate: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            if dominates(q, p) {
                continue 'candidate;
            }
            // Exact duplicate: only the earliest occurrence survives.
            if j < i && q == p {
                continue 'candidate;
            }
        }
        frontier.push(i);
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_requires_strict_improvement_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]), "ties never dominate");
        assert!(
            !dominates(&[1.0, 3.0], &[2.0, 2.0]),
            "trade-offs never dominate"
        );
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "equal objective arity")]
    fn mismatched_arity_panics() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "NaN objective")]
    fn nan_objective_panics() {
        dominates(&[f64::NAN], &[1.0]);
    }

    #[test]
    fn frontier_drops_dominated_points_and_keeps_trade_offs() {
        let points = vec![
            vec![1.0, 4.0], // frontier (best first objective)
            vec![2.0, 2.0], // frontier (trade-off)
            vec![3.0, 3.0], // dominated by [2,2]
            vec![4.0, 1.0], // frontier (best second objective)
        ];
        assert_eq!(frontier_indices(&points), [0, 1, 3]);
    }

    #[test]
    fn frontier_collapses_exact_duplicates_to_the_first() {
        let points = vec![vec![1.0, 1.0], vec![2.0, 0.5], vec![1.0, 1.0]];
        assert_eq!(frontier_indices(&points), [0, 1]);
    }

    #[test]
    fn frontier_membership_is_order_invariant() {
        let points = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 1.0],
        ];
        let baseline: Vec<Vec<f64>> = frontier_indices(&points)
            .into_iter()
            .map(|i| points[i].clone())
            .collect();
        let mut reversed = points.clone();
        reversed.reverse();
        let mut from_reversed: Vec<Vec<f64>> = frontier_indices(&reversed)
            .into_iter()
            .map(|i| reversed[i].clone())
            .collect();
        from_reversed.reverse();
        assert_eq!(baseline, from_reversed);
    }

    #[test]
    fn single_point_and_empty_inputs_are_trivial_frontiers() {
        assert!(frontier_indices(&[]).is_empty());
        assert_eq!(frontier_indices(&[vec![5.0, 5.0]]), [0]);
    }
}
