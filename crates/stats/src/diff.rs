//! Aligning and diffing two counter sets by name.
//!
//! Every [`counters!`](crate::counters) struct enumerates itself as
//! `(name, value)` pairs through its generated `iter()`. That shape is
//! what run telemetry dumps persist, so cross-run regression checks
//! reduce to one operation: align two such lists by name and classify
//! every counter as unchanged, changed, or present on only one side.
//! [`diff_counters`] performs that alignment *totally* — each input
//! name lands in exactly one bucket of the returned
//! [`CounterSetDiff`] — so a gating layer can prove it inspected every
//! counter both runs produced.

use std::collections::HashMap;

/// One counter present in both sets with differing values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// The counter's dotted name (as yielded by `iter()`).
    pub name: String,
    /// Its value in the baseline set.
    pub baseline: u64,
    /// Its value in the candidate set.
    pub candidate: u64,
}

impl CounterDelta {
    /// Signed difference `candidate - baseline` (never overflows: both
    /// operands fit in `u64`).
    pub fn delta(&self) -> i128 {
        i128::from(self.candidate) - i128::from(self.baseline)
    }

    /// Relative magnitude `|delta| / max(baseline, 1)` — the scale-free
    /// view tolerance policies classify against.
    pub fn rel(&self) -> f64 {
        self.delta().unsigned_abs() as f64 / self.baseline.max(1) as f64
    }
}

/// The total alignment of two counter sets by name.
///
/// Totality invariant: every baseline name appears in exactly one of
/// `changed`, `unchanged` or `only_in_baseline`; every candidate name
/// in exactly one of `changed`, `unchanged` or `only_in_candidate`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSetDiff {
    /// Counters present in both sets with differing values, in
    /// baseline order.
    pub changed: Vec<CounterDelta>,
    /// Names present in both sets with equal values, in baseline order.
    pub unchanged: Vec<String>,
    /// Counters only the baseline has (removed by the candidate), in
    /// baseline order.
    pub only_in_baseline: Vec<(String, u64)>,
    /// Counters only the candidate has (added since the baseline), in
    /// candidate order.
    pub only_in_candidate: Vec<(String, u64)>,
}

impl CounterSetDiff {
    /// `true` when the two sets were identical: same names, same
    /// values.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
            && self.only_in_baseline.is_empty()
            && self.only_in_candidate.is_empty()
    }

    /// Number of names aligned on both sides (changed + unchanged).
    pub fn aligned(&self) -> usize {
        self.changed.len() + self.unchanged.len()
    }
}

/// Aligns two `(name, value)` counter lists by name.
///
/// Accepts anything iterable in the shape `iter()` yields, so callers
/// diff counter structs directly: `diff_counters(a.iter(), b.iter())`.
/// Names are assumed unique within each set (the `counters!` macro
/// guarantees this for generated structs); if a name repeats, the
/// first occurrence wins.
pub fn diff_counters<A, B>(baseline: A, candidate: B) -> CounterSetDiff
where
    A: IntoIterator<Item = (String, u64)>,
    B: IntoIterator<Item = (String, u64)>,
{
    let candidate: Vec<(String, u64)> = candidate.into_iter().collect();
    let mut by_name: HashMap<&str, u64> = HashMap::with_capacity(candidate.len());
    for (name, value) in &candidate {
        by_name.entry(name.as_str()).or_insert(*value);
    }

    let mut diff = CounterSetDiff::default();
    let mut seen_in_baseline: HashMap<String, ()> = HashMap::new();
    for (name, value) in baseline {
        if seen_in_baseline.insert(name.clone(), ()).is_some() {
            continue; // duplicate baseline name: first occurrence won
        }
        match by_name.get(name.as_str()) {
            Some(&other) if other == value => diff.unchanged.push(name),
            Some(&other) => diff.changed.push(CounterDelta {
                name,
                baseline: value,
                candidate: other,
            }),
            None => diff.only_in_baseline.push((name, value)),
        }
    }
    let mut seen_in_candidate: HashMap<&str, ()> = HashMap::new();
    for (name, value) in &candidate {
        if seen_in_candidate.insert(name.as_str(), ()).is_some() {
            continue;
        }
        if !seen_in_baseline.contains_key(name.as_str()) {
            diff.only_in_candidate.push((name.clone(), *value));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(entries: &[(&str, u64)]) -> Vec<(String, u64)> {
        entries.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn identical_sets_diff_empty() {
        let a = pairs(&[("cycles", 10), ("loads", 3)]);
        let d = diff_counters(a.clone(), a);
        assert!(d.is_empty());
        assert_eq!(d.unchanged, ["cycles", "loads"]);
        assert_eq!(d.aligned(), 2);
    }

    #[test]
    fn changed_values_report_signed_delta_in_baseline_order() {
        let a = pairs(&[("cycles", 10), ("loads", 3), ("stores", 7)]);
        let b = pairs(&[("stores", 5), ("loads", 3), ("cycles", 12)]);
        let d = diff_counters(a, b);
        assert_eq!(d.unchanged, ["loads"]);
        assert_eq!(d.changed.len(), 2);
        assert_eq!(d.changed[0].name, "cycles");
        assert_eq!(d.changed[0].delta(), 2);
        assert_eq!(d.changed[1].name, "stores");
        assert_eq!(d.changed[1].delta(), -2);
        assert!(!d.is_empty());
    }

    #[test]
    fn one_sided_names_are_classified() {
        let a = pairs(&[("old", 1), ("kept", 2)]);
        let b = pairs(&[("kept", 2), ("new", 9)]);
        let d = diff_counters(a, b);
        assert_eq!(d.only_in_baseline, pairs(&[("old", 1)]));
        assert_eq!(d.only_in_candidate, pairs(&[("new", 9)]));
        assert_eq!(d.unchanged, ["kept"]);
    }

    #[test]
    fn rel_is_scale_free_and_total_at_zero_baseline() {
        let grew = CounterDelta {
            name: "x".into(),
            baseline: 100,
            candidate: 110,
        };
        assert!((grew.rel() - 0.1).abs() < 1e-12);
        let from_zero = CounterDelta {
            name: "y".into(),
            baseline: 0,
            candidate: 3,
        };
        assert_eq!(from_zero.rel(), 3.0, "max(baseline, 1) avoids div by zero");
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let d = CounterDelta {
            name: "x".into(),
            baseline: u64::MAX,
            candidate: 0,
        };
        assert_eq!(d.delta(), -i128::from(u64::MAX));
    }
}
