//! Leaf-wise merging of serialized counter trees.
//!
//! The shard protocol moves counter state between processes as JSON:
//! each worker serializes its runner/cache counters into a `StatsDump`
//! fragment, and the supervisor folds the fragments back together.
//! Inside one process that fold is the `counters!`-generated `merge`;
//! across processes the fragments arrive as [`Value`] trees, so this
//! module provides the value-level counterpart for *additive* counter
//! sections:
//!
//! * unsigned-integer leaves add (saturating — a merge must never
//!   panic on adversarial fragment bytes),
//! * float leaves add (wall seconds, simulated seconds),
//! * objects merge key-wise (keys missing on either side are kept,
//!   appended in first-seen order so the result is deterministic),
//! * anything else — or a leaf/subtree shape mismatch — is an error
//!   naming the offending dotted path, because it means the fragments
//!   disagree about the schema and silently preferring one side would
//!   corrupt telemetry.
//!
//! This is deliberately *only* for sections whose fields are all
//! sum-policy (the `runner.*` execution counters). Sections with `max`
//! or `keep` policies (simulator counters) must be merged by their
//! typed structs, where the per-field policy lives — the supervisor
//! does exactly that by deserializing them first.

use serde::value::Value;

/// Folds `other` into `acc` leaf-wise (see the module docs for the
/// exact rules).
///
/// # Errors
///
/// Returns the dotted path and a description when the trees disagree
/// about a node's shape or a leaf is not a number.
pub fn merge_counter_values(acc: &mut Value, other: &Value) -> Result<(), String> {
    merge_at("", acc, other)
}

/// Merges a sequence of counter trees into one (the first tree is the
/// starting accumulator).
///
/// # Errors
///
/// Propagates the first shape mismatch; `fragments` being empty is an
/// error too (there is no identity element without a schema).
pub fn merge_counter_fragments(fragments: &[Value]) -> Result<Value, String> {
    let (first, rest) = fragments
        .split_first()
        .ok_or_else(|| "no fragments to merge".to_string())?;
    let mut acc = first.clone();
    for fragment in rest {
        merge_counter_values(&mut acc, fragment)?;
    }
    Ok(acc)
}

fn merge_at(path: &str, acc: &mut Value, other: &Value) -> Result<(), String> {
    let describe = |v: &Value| match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "int",
        Value::UInt(_) => "uint",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    match (&mut *acc, other) {
        (Value::UInt(a), Value::UInt(b)) => {
            *a = a.saturating_add(*b);
            Ok(())
        }
        // Any numeric pairing that isn't uint+uint merges in float
        // space: fragment floats (wall/sim seconds) may round-trip
        // through JSON as integers when they happen to be whole.
        (a @ (Value::UInt(_) | Value::Int(_) | Value::Float(_)), b) if b.as_f64().is_some() => {
            let sum = a.as_f64().expect("lhs is numeric") + b.as_f64().expect("rhs is numeric");
            *a = Value::Float(sum);
            Ok(())
        }
        (Value::Object(a), Value::Object(b)) => {
            for (key, bv) in b {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match a.iter_mut().find(|(k, _)| k == key) {
                    Some((_, av)) => merge_at(&child_path, av, bv)?,
                    None => a.push((key.clone(), bv.clone())),
                }
            }
            Ok(())
        }
        (a, b) => Err(format!(
            "counter merge mismatch at `{path}`: {} vs {}",
            describe(a),
            describe(b)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn uint_leaves_add_and_saturate() {
        let mut a = Value::UInt(7);
        merge_counter_values(&mut a, &Value::UInt(5)).expect("merge");
        assert_eq!(a, Value::UInt(12));
        let mut big = Value::UInt(u64::MAX);
        merge_counter_values(&mut big, &Value::UInt(3)).expect("merge");
        assert_eq!(big, Value::UInt(u64::MAX), "saturates instead of panicking");
    }

    #[test]
    fn float_leaves_add_even_when_one_side_parsed_integral() {
        let mut a = Value::Float(0.5);
        merge_counter_values(&mut a, &Value::Float(0.25)).expect("merge");
        assert_eq!(a, Value::Float(0.75));
        // A whole-valued float can reparse as UInt; merging must still
        // treat it as a number, not a shape mismatch.
        let mut b = Value::Float(1.5);
        merge_counter_values(&mut b, &Value::UInt(2)).expect("merge");
        assert_eq!(b, Value::Float(3.5));
        let mut c = Value::UInt(2);
        merge_counter_values(&mut c, &Value::Float(0.5)).expect("merge");
        assert_eq!(c, Value::Float(2.5));
    }

    #[test]
    fn objects_merge_keywise_preserving_first_seen_order() {
        let mut a = obj(vec![("jobs", Value::UInt(3)), ("hits", Value::UInt(1))]);
        let b = obj(vec![
            ("hits", Value::UInt(2)),
            ("extra", Value::UInt(9)),
            ("jobs", Value::UInt(4)),
        ]);
        merge_counter_values(&mut a, &b).expect("merge");
        assert_eq!(
            a,
            obj(vec![
                ("jobs", Value::UInt(7)),
                ("hits", Value::UInt(3)),
                ("extra", Value::UInt(9)),
            ]),
            "existing keys keep their slot; new keys append"
        );
    }

    #[test]
    fn nested_objects_recurse() {
        let mut a = obj(vec![("cache", obj(vec![("misses", Value::UInt(5))]))]);
        let b = obj(vec![(
            "cache",
            obj(vec![
                ("misses", Value::UInt(2)),
                ("disk_hits", Value::UInt(1)),
            ]),
        )]);
        merge_counter_values(&mut a, &b).expect("merge");
        assert_eq!(
            a.get("cache").and_then(|c| c.get("misses")),
            Some(&Value::UInt(7))
        );
        assert_eq!(
            a.get("cache").and_then(|c| c.get("disk_hits")),
            Some(&Value::UInt(1))
        );
    }

    #[test]
    fn shape_mismatches_name_the_dotted_path() {
        let mut a = obj(vec![("runner", obj(vec![("jobs", Value::UInt(1))]))]);
        let b = obj(vec![(
            "runner",
            obj(vec![("jobs", Value::Str("three".into()))]),
        )]);
        let err = merge_counter_values(&mut a, &b).expect_err("string is not a counter");
        assert!(err.contains("runner.jobs"), "path in error: {err}");
    }

    #[test]
    fn fragment_fold_merges_left_to_right() {
        let fragments = vec![
            obj(vec![("jobs", Value::UInt(1))]),
            obj(vec![("jobs", Value::UInt(2))]),
            obj(vec![("jobs", Value::UInt(3))]),
        ];
        let merged = merge_counter_fragments(&fragments).expect("merge");
        assert_eq!(merged.get("jobs"), Some(&Value::UInt(6)));
        assert!(
            merge_counter_fragments(&[]).is_err(),
            "empty set has no schema"
        );
    }
}
