//! # hetsim-stats: declarative event-counter structs
//!
//! Every figure of HetCore (ISCA 2018) is derived from event counters —
//! committed operations, register-file traffic, cache hits — that the
//! McPAT-style power models consume. Before this crate, each simulator
//! hand-rolled its counter struct together with 25-line `merge`/`minus`
//! field lists that silently drifted whenever a field was added.
//!
//! The [`counters!`] macro replaces those field lists with a single
//! declaration. For each struct it generates:
//!
//! * the struct itself (`u64` scalar counters, plus *nested groups* —
//!   fields whose type is another `counters!` struct), with
//!   `Debug`/`Clone`/`Copy`/`Default`/`PartialEq`/`Eq` derived;
//! * [`merge`](#merge--minus) and [`minus`](#merge--minus) with
//!   per-field policies declared in the struct definition;
//! * enumeration: `visit` / `iter()` over `(name, value)` pairs (nested
//!   groups contribute dotted names like `"il1.accesses"`), plus
//!   `get`/`set` by dotted name;
//! * `serde` support (the workspace's vendored subset): structs map to
//!   objects with one entry per field in declaration order.
//!
//! Adding a counter is a one-line change, visible everywhere at once —
//! power accounting, run reports, the result cache and campaign
//! telemetry — with merge/minus correctness guaranteed by construction.
//!
//! ## Merge & minus
//!
//! Counters are aggregated two ways, and the two are **not** symmetric:
//!
//! * `merge(&mut self, other)` folds another run's counters in — used
//!   for multicore totals, where event counts add but `cycles` takes
//!   the max (cores run in parallel);
//! * `minus(&self, baseline) -> Self` subtracts a warmup snapshot —
//!   event counts subtract (saturating: a snapshot taken mid-flight can
//!   exceed the final count for in-flight work, and wrapping would be a
//!   silent catastrophe in release builds), while `cycles`/`committed`
//!   are kept for the caller to recompute.
//!
//! Both policies are declared per field, so the asymmetry is explicit
//! rather than tribal knowledge:
//!
//! ```
//! use hetsim_stats::counters;
//!
//! counters! {
//!     /// Counters of a toy pipeline.
//!     pub struct ToyStats {
//!         /// Cycles: parallel merges take the max; warmup subtraction
//!         /// keeps the running value (the caller recomputes it).
//!         pub cycles: u64 = max / keep,
//!         /// Committed ops: sums across cores, kept across minus.
//!         pub committed: u64 = sum / keep,
//!         /// Plain event count (default policy: `sum / sub`).
//!         pub loads: u64,
//!     }
//! }
//!
//! let mut a = ToyStats { cycles: 100, committed: 10, loads: 7 };
//! let b = ToyStats { cycles: 80, committed: 20, loads: 5 };
//! a.merge(&b);
//! assert_eq!((a.cycles, a.committed, a.loads), (100, 30, 12));
//! let names: Vec<String> = a.iter().map(|(n, _)| n).collect();
//! assert_eq!(names, ["cycles", "committed", "loads"]);
//! ```
//!
//! Scalar policies: `merge` is one of `sum` (default), `max`, `keep`;
//! `minus` is one of `sub` (default, saturating) or `keep`. Nested
//! groups take no annotation — they always delegate field-wise.

#![warn(missing_docs)]

// Callers reach the vendored serde through `$crate::serde` inside the
// macro expansion, so they don't need their own serde dependency.
#[doc(hidden)]
pub use serde;

pub mod attribution;
pub mod diff;
pub mod histogram;
pub mod merge;
pub mod pareto;

pub use attribution::{ClassCounts, CycleClass};
pub use histogram::Histogram;
pub use merge::{merge_counter_fragments, merge_counter_values};
pub use pareto::{dominates, frontier_indices};

/// Defines one counter struct with derived `merge`, `minus`,
/// enumeration and serde support.
///
/// See the [crate docs](crate) for the grammar and the policy table.
/// Fields are either scalar counters (`name: u64`, optionally annotated
/// `= merge_policy / minus_policy`) or nested groups (`name: OtherStats`
/// where `OtherStats` is itself defined via `counters!`).
#[macro_export]
macro_rules! counters {
    (
        $(#[$sattr:meta])*
        $vis:vis struct $name:ident {
            $(
                $(#[$fattr:meta])*
                $fvis:vis $field:ident : $ftype:tt $(= $mpol:ident / $dpol:ident)?
            ),* $(,)?
        }
    ) => {
        $(#[$sattr])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        $vis struct $name {
            $(
                $(#[$fattr])*
                $fvis $field: $ftype,
            )*
        }

        impl $name {
            /// Folds another set of counters into this one, field by
            /// field, honoring each field's declared merge policy
            /// (`sum`, `max` or `keep`; nested groups delegate).
            pub fn merge(&mut self, other: &$name) {
                $( $crate::counters!(@merge self, other, $field, $ftype, [$($mpol)?]); )*
            }

            /// Counter-wise difference `self - baseline` (for warmup
            /// snapshots), honoring each field's declared minus policy:
            /// `sub` fields subtract saturating at zero (a snapshot can
            /// exceed the final count for in-flight work; wrapping
            /// would be a silent catastrophe in release builds), `keep`
            /// fields retain `self`'s value for the caller to
            /// recompute, and nested groups delegate.
            #[must_use]
            pub fn minus(&self, baseline: &$name) -> $name {
                $name {
                    $( $field: $crate::counters!(@minus self, baseline, $field, $ftype, [$($dpol)?]), )*
                }
            }

            /// Calls `visit(name, value)` for every scalar counter in
            /// declaration order. Names are prefixed with `prefix`;
            /// nested groups extend the prefix with `"<field>."`.
            pub fn visit(&self, prefix: &str, visit: &mut dyn FnMut(&str, u64)) {
                $( $crate::counters!(@visit self, prefix, visit, $field, $ftype); )*
            }

            /// Iterates over `(name, value)` pairs in declaration
            /// order. Nested groups contribute dotted names, e.g.
            /// `"il1.accesses"`. Names are unique within a struct.
            pub fn iter(&self) -> ::std::vec::IntoIter<(::std::string::String, u64)> {
                let mut out = ::std::vec::Vec::new();
                self.visit("", &mut |name, value| out.push((name.to_string(), value)));
                out.into_iter()
            }

            /// Looks up one counter by its dotted name.
            pub fn get(&self, name: &str) -> ::std::option::Option<u64> {
                $( $crate::counters!(@get self, name, $field, $ftype); )*
                ::std::option::Option::None
            }

            /// Sets one counter by its dotted name; returns `false` if
            /// no such counter exists.
            pub fn set(&mut self, name: &str, value: u64) -> bool {
                $( $crate::counters!(@set self, name, value, $field, $ftype); )*
                false
            }
        }

        impl $crate::serde::Serialize for $name {
            fn to_value(&self) -> $crate::serde::value::Value {
                $crate::serde::value::Value::Object(::std::vec![
                    $(
                        (
                            ::std::string::String::from(stringify!($field)),
                            $crate::serde::Serialize::to_value(&self.$field),
                        ),
                    )*
                ])
            }
        }

        impl $crate::serde::Deserialize for $name {
            fn from_value(
                v: &$crate::serde::value::Value,
            ) -> ::std::result::Result<Self, $crate::serde::Error> {
                ::std::result::Result::Ok($name {
                    $(
                        $field: $crate::serde::__private::field::<$ftype>(
                            v,
                            stringify!($field),
                            stringify!($name),
                        )?,
                    )*
                })
            }
        }
    };

    // ---- per-field merge: sum (default) / max / keep / group ----
    (@merge $s:ident, $o:ident, $f:ident, u64, []) => { $s.$f += $o.$f; };
    (@merge $s:ident, $o:ident, $f:ident, u64, [sum]) => { $s.$f += $o.$f; };
    (@merge $s:ident, $o:ident, $f:ident, u64, [max]) => { $s.$f = $s.$f.max($o.$f); };
    (@merge $s:ident, $o:ident, $f:ident, u64, [keep]) => {};
    (@merge $s:ident, $o:ident, $f:ident, $group:ident, []) => { $s.$f.merge(&$o.$f); };

    // ---- per-field minus: sub (default, saturating) / keep / group ----
    (@minus $s:ident, $b:ident, $f:ident, u64, []) => { $s.$f.saturating_sub($b.$f) };
    (@minus $s:ident, $b:ident, $f:ident, u64, [sub]) => { $s.$f.saturating_sub($b.$f) };
    (@minus $s:ident, $b:ident, $f:ident, u64, [keep]) => { $s.$f };
    (@minus $s:ident, $b:ident, $f:ident, $group:ident, []) => { $s.$f.minus(&$b.$f) };

    // ---- enumeration ----
    (@visit $s:ident, $p:ident, $v:ident, $f:ident, u64) => {
        $v(&::std::format!("{}{}", $p, stringify!($f)), $s.$f);
    };
    (@visit $s:ident, $p:ident, $v:ident, $f:ident, $group:ident) => {
        $s.$f
            .visit(&::std::format!("{}{}.", $p, stringify!($f)), $v);
    };
    (@get $s:ident, $n:ident, $f:ident, u64) => {
        if $n == stringify!($f) {
            return ::std::option::Option::Some($s.$f);
        }
    };
    (@get $s:ident, $n:ident, $f:ident, $group:ident) => {
        if let ::std::option::Option::Some(rest) =
            $n.strip_prefix(concat!(stringify!($f), "."))
        {
            return $s.$f.get(rest);
        }
    };
    (@set $s:ident, $n:ident, $val:ident, $f:ident, u64) => {
        if $n == stringify!($f) {
            $s.$f = $val;
            return true;
        }
    };
    (@set $s:ident, $n:ident, $val:ident, $f:ident, $group:ident) => {
        if let ::std::option::Option::Some(rest) =
            $n.strip_prefix(concat!(stringify!($f), "."))
        {
            return $s.$f.set(rest, $val);
        }
    };
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    counters! {
        /// Inner group.
        pub struct Inner {
            /// Accesses.
            pub accesses: u64,
            /// Hits.
            pub hits: u64,
        }
    }

    counters! {
        /// Outer struct exercising every policy and nesting.
        pub struct Outer {
            /// Max-merged, kept on minus.
            pub cycles: u64 = max / keep,
            /// Sum-merged, kept on minus.
            pub committed: u64 = sum / keep,
            /// Default: sum / sub.
            pub loads: u64,
            /// Nested group.
            pub l1: Inner,
        }
    }

    fn sample() -> Outer {
        Outer {
            cycles: 100,
            committed: 40,
            loads: 30,
            l1: Inner {
                accesses: 20,
                hits: 15,
            },
        }
    }

    #[test]
    fn merge_honors_policies() {
        let mut a = sample();
        let b = Outer {
            cycles: 80,
            committed: 2,
            loads: 3,
            l1: Inner {
                accesses: 4,
                hits: 5,
            },
        };
        a.merge(&b);
        assert_eq!(a.cycles, 100, "max");
        assert_eq!(a.committed, 42, "sum");
        assert_eq!(a.loads, 33, "sum (default)");
        assert_eq!(a.l1.accesses, 24, "group delegates");
        assert_eq!(a.l1.hits, 20);
    }

    #[test]
    fn minus_honors_policies_and_saturates() {
        let a = sample();
        let b = Outer {
            loads: 7,
            l1: Inner {
                hits: 999, // snapshot beyond the final count
                ..Inner::default()
            },
            ..Outer::default()
        };
        let d = a.minus(&b);
        assert_eq!(d.cycles, 100, "keep");
        assert_eq!(d.committed, 40, "keep");
        assert_eq!(d.loads, 23, "sub");
        assert_eq!(d.l1.hits, 0, "saturates instead of wrapping");
        assert_eq!(d.l1.accesses, 20);
    }

    #[test]
    fn iter_yields_dotted_names_in_declaration_order() {
        let names: Vec<String> = sample().iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["cycles", "committed", "loads", "l1.accesses", "l1.hits"]
        );
    }

    #[test]
    fn groups_enumerate_standalone_too() {
        let names: Vec<String> = sample().l1.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["accesses", "hits"]);
    }

    #[test]
    fn get_and_set_address_by_dotted_name() {
        let mut s = sample();
        assert_eq!(s.get("cycles"), Some(100));
        assert_eq!(s.get("l1.hits"), Some(15));
        assert_eq!(s.get("nope"), None);
        assert_eq!(s.get("l1.nope"), None);
        assert!(s.set("l1.accesses", 77));
        assert_eq!(s.l1.accesses, 77);
        assert!(!s.set("nope", 1));
    }

    #[test]
    fn serde_round_trips() {
        let s = sample();
        let back = Outer::from_value(&s.to_value()).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn serialized_object_uses_field_names() {
        let v = sample().to_value();
        assert_eq!(v.get("cycles").and_then(|x| x.as_u64()), Some(100));
        assert_eq!(
            v.get("l1")
                .and_then(|l1| l1.get("hits"))
                .and_then(|x| x.as_u64()),
            Some(15)
        );
    }
}
