//! A bounded-bucket histogram for wall-time telemetry.
//!
//! The runner's timing counters (`runner.timing.*` in the stats dump)
//! need a distribution, not just a sum: one straggler job looks the
//! same as uniformly slow jobs in a mean, but very different in a
//! histogram. [`Histogram`] keeps **power-of-two buckets** with a fixed
//! bucket count, so:
//!
//! * memory is constant (no per-sample storage, no unbounded growth);
//! * any `u64` sample has a bucket — the last bucket absorbs
//!   everything at or beyond `2^(BUCKETS-2)`, so recording can never
//!   fail or resize;
//! * `merge` is element-wise saturating addition, which is
//!   **associative and commutative** — campaign-level aggregation over
//!   batches gives the same histogram in any order (the property the
//!   proptests in `tests/histogram_props.rs` pin).
//!
//! Totals (`count`, `sum`) saturate instead of wrapping for the same
//! reason the counter structs' `minus` saturates: silent wraparound in
//! release builds would corrupt telemetry invisibly.

use crate::serde::value::Value;
use crate::serde::{Deserialize, Error, Serialize};

/// Number of buckets: bucket 0 holds zero-valued samples, bucket `i`
/// (1 ≤ i < 31) holds samples in `[2^(i-1), 2^i)`, and the last bucket
/// holds everything at or beyond `2^30` (~18 minutes in microseconds —
/// far beyond any single simulation job).
pub const BUCKETS: usize = 32;

/// A fixed-size power-of-two-bucket histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    /// Samples recorded (saturating).
    count: u64,
    /// Sum of all samples (saturating).
    sum: u64,
    /// Largest sample seen (0 when empty).
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The bucket index for `value`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // 2^(i-1) <= value < 2^i  =>  bucket i, clamped into range.
        let i = 64 - value.leading_zeros() as usize;
        i.min(BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] = self.counts[bucket_of(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram in (element-wise saturating addition;
    /// associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket counts (bucket 0 = zeros, bucket `i` =
    /// `[2^(i-1), 2^i)`, last bucket = overflow).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("max".into(), Value::UInt(self.max)),
            (
                "buckets".into(),
                Value::Array(self.counts.iter().map(|&c| Value::UInt(c)).collect()),
            ),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u64_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| Error::custom(format!("Histogram has no unsigned `{name}`")))
        };
        let buckets = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::custom("Histogram has no `buckets` array"))?;
        if buckets.len() != BUCKETS {
            return Err(Error::custom(format!(
                "Histogram has {} buckets, expected {BUCKETS}",
                buckets.len()
            )));
        }
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(buckets) {
            *slot = bucket
                .as_u64()
                .ok_or_else(|| Error::custom("Histogram bucket is not an unsigned integer"))?;
        }
        Ok(Histogram {
            counts,
            count: u64_field("count")?,
            sum: u64_field("sum")?,
            max: u64_field("max")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_full_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 29), 30);
        assert_eq!(bucket_of(1 << 30), 31, "first overflow value");
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1, "clamped, no panic");
    }

    #[test]
    fn record_updates_all_summary_stats() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(100);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 105);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 35.0).abs() < 1e-12);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_accumulates_and_saturates() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(u64::MAX);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(a.max(), u64::MAX);
    }

    #[test]
    fn serde_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 4096, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_value(&h.to_value()).expect("round trip");
        assert_eq!(back, h);
    }

    #[test]
    fn deserialize_rejects_wrong_bucket_count() {
        let mut v = Histogram::new().to_value();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "buckets" {
                    *val = Value::Array(vec![Value::UInt(0); 3]);
                }
            }
        }
        assert!(Histogram::from_value(&v).is_err());
    }
}
