//! A bounded-bucket histogram for wall-time telemetry.
//!
//! The runner's timing counters (`runner.timing.*` in the stats dump)
//! need a distribution, not just a sum: one straggler job looks the
//! same as uniformly slow jobs in a mean, but very different in a
//! histogram. [`Histogram`] keeps **power-of-two buckets** with a fixed
//! bucket count, so:
//!
//! * memory is constant (no per-sample storage, no unbounded growth);
//! * any `u64` sample has a bucket — the last bucket absorbs
//!   everything at or beyond `2^(BUCKETS-2)`, so recording can never
//!   fail or resize;
//! * `merge` is element-wise saturating addition, which is
//!   **associative and commutative** — campaign-level aggregation over
//!   batches gives the same histogram in any order (the property the
//!   proptests in `tests/histogram_props.rs` pin).
//!
//! Totals (`count`, `sum`) saturate instead of wrapping for the same
//! reason the counter structs' `minus` saturates: silent wraparound in
//! release builds would corrupt telemetry invisibly.

use crate::serde::value::Value;
use crate::serde::{Deserialize, Error, Serialize};

/// Number of buckets: bucket 0 holds zero-valued samples, bucket `i`
/// (1 ≤ i < 31) holds samples in `[2^(i-1), 2^i)`, and the last bucket
/// holds everything at or beyond `2^30` (~18 minutes in microseconds —
/// far beyond any single simulation job).
pub const BUCKETS: usize = 32;

/// A fixed-size power-of-two-bucket histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    /// Samples recorded (saturating).
    count: u64,
    /// Sum of all samples (saturating).
    sum: u64,
    /// Largest sample seen (0 when empty).
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// The bucket index for `value`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // 2^(i-1) <= value < 2^i  =>  bucket i, clamped into range.
        let i = 64 - value.leading_zeros() as usize;
        i.min(BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in one update — what a bulk
    /// accounting step needs (e.g. "the ROB held 40 entries for the
    /// next 900 skipped cycles") without `n` individual `record` calls.
    /// `n == 0` is a no-op.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(value)] = self.counts[bucket_of(value)].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
    }

    /// Folds another histogram in (element-wise saturating addition;
    /// associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-bucket counts (bucket 0 = zeros, bucket `i` =
    /// `[2^(i-1), 2^i)`, last bucket = overflow).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// An upper-bound estimate of the `q`-quantile sample (`q` in
    /// `[0, 1]`), resolved to bucket granularity: the smallest bucket
    /// upper bound at which the cumulative count reaches `q * count`.
    ///
    /// Buckets are power-of-two wide, so the estimate can overshoot the
    /// true sample by at most 2x; it never undershoots, and it is
    /// clamped to [`Histogram::max`] (exact for the overflow bucket and
    /// for any quantile landing in the top occupied bucket). Returns
    /// `None` when the histogram is empty — there is no sample to
    /// estimate, and 0 would be indistinguishable from a real all-zero
    /// distribution.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // The rank of the q-quantile sample, 1-based, clamped into
        // [1, count] so q=0 means "first sample" and q=1 "last".
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // Upper bound of bucket i: 0 for the zero bucket,
                // 2^i - 1 for [2^(i-1), 2^i), and `max` for overflow.
                let bound = match i {
                    0 => 0,
                    i if i == BUCKETS - 1 => self.max,
                    i => (1u64 << i) - 1,
                };
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (see [`Histogram::quantile`]); 0 when empty, so
    /// serialized summaries stay plain integers.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50).unwrap_or(0)
    }

    /// 95th-percentile estimate (see [`Histogram::quantile`]); 0 when
    /// empty.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95).unwrap_or(0)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]); 0 when
    /// empty.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        // p50/p95/p99 are derived fields for dump consumers; the
        // deserializer ignores them (they reconstruct from `buckets`),
        // so round-trip equality is preserved.
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("max".into(), Value::UInt(self.max)),
            ("p50".into(), Value::UInt(self.p50())),
            ("p95".into(), Value::UInt(self.p95())),
            ("p99".into(), Value::UInt(self.p99())),
            (
                "buckets".into(),
                Value::Array(self.counts.iter().map(|&c| Value::UInt(c)).collect()),
            ),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u64_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| Error::custom(format!("Histogram has no unsigned `{name}`")))
        };
        let buckets = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::custom("Histogram has no `buckets` array"))?;
        if buckets.len() != BUCKETS {
            return Err(Error::custom(format!(
                "Histogram has {} buckets, expected {BUCKETS}",
                buckets.len()
            )));
        }
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(buckets) {
            *slot = bucket
                .as_u64()
                .ok_or_else(|| Error::custom("Histogram bucket is not an unsigned integer"))?;
        }
        Ok(Histogram {
            counts,
            count: u64_field("count")?,
            sum: u64_field("sum")?,
            max: u64_field("max")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_full_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 29), 30);
        assert_eq!(bucket_of(1 << 30), 31, "first overflow value");
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1, "clamped, no panic");
    }

    #[test]
    fn record_updates_all_summary_stats() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(100);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 105);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 35.0).abs() < 1e-12);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_accumulates_and_saturates() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(u64::MAX);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(a.max(), u64::MAX);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4: [8, 16)
        }
        h.record(1000); // bucket 10: [512, 1024)
        assert_eq!(h.p50(), 15, "median lands in the [8,16) bucket");
        assert_eq!(h.p95(), 15);
        assert_eq!(h.p99(), 15, "rank 99 of 100 is still a 10");
        assert_eq!(h.quantile(1.0), Some(1000), "top quantile clamps to max");
    }

    #[test]
    fn quantiles_handle_edge_shapes() {
        assert_eq!(Histogram::new().p50(), 0, "empty summary stays 0");
        assert_eq!(
            Histogram::new().quantile(0.5),
            None,
            "empty has no quantile"
        );
        let mut zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.p99(), 0, "all-zero samples");
        let mut one = Histogram::new();
        one.record(u64::MAX);
        assert_eq!(one.p50(), u64::MAX, "overflow bucket reports max");
        assert_eq!(one.quantile(0.0), Some(u64::MAX), "single sample at any q");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        bulk.record_n(10, 5);
        bulk.record_n(0, 2);
        bulk.record_n(99, 0);
        let mut loop_h = Histogram::new();
        for _ in 0..5 {
            loop_h.record(10);
        }
        for _ in 0..2 {
            loop_h.record(0);
        }
        assert_eq!(bulk, loop_h);
        // Bulk sums saturate like single records.
        let mut sat = Histogram::new();
        sat.record_n(u64::MAX, 3);
        assert_eq!(sat.sum(), u64::MAX);
        assert_eq!(sat.count(), 3);
    }

    #[test]
    fn serialized_quantiles_ride_along_and_round_trip() {
        let mut h = Histogram::new();
        for v in [3, 3, 3, 900] {
            h.record(v);
        }
        let v = h.to_value();
        assert_eq!(v.get("p50").and_then(Value::as_u64), Some(h.p50()));
        assert_eq!(v.get("p95").and_then(Value::as_u64), Some(h.p95()));
        assert_eq!(v.get("p99").and_then(Value::as_u64), Some(h.p99()));
        let back = Histogram::from_value(&v).expect("round trip");
        assert_eq!(back, h, "derived fields must not break round-tripping");
    }

    #[test]
    fn serde_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 4096, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_value(&h.to_value()).expect("round trip");
        assert_eq!(back, h);
    }

    #[test]
    fn deserialize_rejects_wrong_bucket_count() {
        let mut v = Histogram::new().to_value();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "buckets" {
                    *val = Value::Array(vec![Value::UInt(0); 3]);
                }
            }
        }
        assert!(Histogram::from_value(&v).is_err());
    }
}
