//! Top-down cycle-attribution vocabulary shared by the CPU and GPU
//! simulators and the profiling exporters.
//!
//! Every simulated cycle of every core/CU is charged to exactly one
//! [`CycleClass`] — the top-down decomposition the profiler (`repro
//! profile`) rolls up per design. The class set is deliberately small
//! and device-agnostic: the same seven names cover an out-of-order CPU
//! core and a SIMT compute unit, so cross-device comparisons (where do
//! TFET latencies actually go?) need no name translation.
//!
//! Class *counting* is always on — it is a handful of branches per
//! simulated event-step and must never change simulation results — but
//! the heavier per-cycle artifacts (occupancy histograms, latency
//! distributions) are gated behind the process-wide [`enabled`] flag so
//! plain runs pay nothing for them.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::histogram::Histogram;
use crate::serde::value::Value;
use crate::serde::{Deserialize, Error, Serialize};

/// The top-down cycle classes, in canonical (serialization) order.
///
/// A cycle is charged to the *highest-priority* class that applies:
/// useful retirement first, then front-end supply, then the specific
/// back-end bottleneck that blocked progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleClass {
    /// The unit retired/committed work this cycle.
    Retire,
    /// The front end delivered new work (dispatch/fetch made progress)
    /// but nothing retired.
    Frontend,
    /// The front end is squashed: waiting out a branch-mispredict
    /// redirect before it may deliver again.
    BranchRedirect,
    /// Dispatch blocked on back-end occupancy (ROB/IQ/LSQ/rename full).
    RobFull,
    /// Issue is the bottleneck: work is buffered but no instruction
    /// became ready (dependence chains, structural issue limits).
    IssueBound,
    /// The oldest in-flight instruction is an outstanding memory
    /// access; the window is draining behind it.
    MemLatency,
    /// No work anywhere in the unit (drained launch tail, idle core).
    IdleSkipped,
}

impl CycleClass {
    /// Every class, in canonical order (the order [`ClassCounts`]
    /// serializes and folded stacks enumerate).
    pub const ALL: [CycleClass; 7] = [
        CycleClass::Retire,
        CycleClass::Frontend,
        CycleClass::BranchRedirect,
        CycleClass::RobFull,
        CycleClass::IssueBound,
        CycleClass::MemLatency,
        CycleClass::IdleSkipped,
    ];

    /// The stable kebab-case name (used in folded stacks, counter
    /// tracks and the `hetsim-profile-v1` schema).
    pub fn name(self) -> &'static str {
        match self {
            CycleClass::Retire => "retire",
            CycleClass::Frontend => "frontend",
            CycleClass::BranchRedirect => "branch-redirect",
            CycleClass::RobFull => "rob-full",
            CycleClass::IssueBound => "issue-bound",
            CycleClass::MemLatency => "mem-latency",
            CycleClass::IdleSkipped => "idle-skipped",
        }
    }

    /// Parses a kebab-case class name back into its class.
    pub fn from_name(name: &str) -> Option<CycleClass> {
        CycleClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Per-class cycle totals for one unit (core or CU): a tiny fixed
/// array indexed by [`CycleClass`], summing to the unit's total
/// simulated cycles — the invariant `hetsim-check` enforces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts([u64; CycleClass::ALL.len()]);

impl ClassCounts {
    /// All-zero counts.
    pub fn new() -> Self {
        ClassCounts::default()
    }

    /// Charges `cycles` cycles to `class` (saturating).
    pub fn charge(&mut self, class: CycleClass, cycles: u64) {
        let slot = &mut self.0[class as usize];
        *slot = slot.saturating_add(cycles);
    }

    /// The cycles charged to `class`.
    pub fn get(&self, class: CycleClass) -> u64 {
        self.0[class as usize]
    }

    /// Folds another unit's counts in (element-wise saturating add).
    pub fn merge(&mut self, other: &ClassCounts) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Total cycles across all classes (saturating).
    pub fn total(&self) -> u64 {
        self.0.iter().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// `(class, cycles)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleClass, u64)> + '_ {
        CycleClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// `true` when no cycle has been charged to any class.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }
}

impl Serialize for ClassCounts {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(class, cycles)| (class.name().to_string(), Value::UInt(cycles)))
                .collect(),
        )
    }
}

impl Deserialize for ClassCounts {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::custom("ClassCounts is not an object"))?;
        let mut counts = ClassCounts::new();
        for (name, value) in entries {
            let class = CycleClass::from_name(name)
                .ok_or_else(|| Error::custom(format!("unknown cycle class `{name}`")))?;
            let cycles = value
                .as_u64()
                .ok_or_else(|| Error::custom(format!("cycle class `{name}` is not unsigned")))?;
            counts.charge(class, cycles);
        }
        Ok(counts)
    }
}

/// A per-unit occupancy histogram bundle: how full the core's windows
/// (or the CU's wavefront pool) were, cycle by cycle. Recorded only
/// while [`enabled`] profiling is on — bulk-sampled via
/// [`Histogram::record_n`] so dead-cycle skips stay O(1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyHistograms {
    /// ROB fill (CPU) / resident unfinished wavefronts (GPU).
    pub rob: Histogram,
    /// Issue-queue fill (CPU only; empty for CUs).
    pub iq: Histogram,
    /// Load-store-queue fill (CPU only; empty for CUs).
    pub lsq: Histogram,
}

impl OccupancyHistograms {
    /// Folds another unit's occupancy samples in.
    pub fn merge(&mut self, other: &OccupancyHistograms) {
        self.rob.merge(&other.rob);
        self.iq.merge(&other.iq);
        self.lsq.merge(&other.lsq);
    }
}

impl Serialize for OccupancyHistograms {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rob".into(), self.rob.to_value()),
            ("iq".into(), self.iq.to_value()),
            ("lsq".into(), self.lsq.to_value()),
        ])
    }
}

impl Deserialize for OccupancyHistograms {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::custom(format!("OccupancyHistograms has no `{name}`")))
                .and_then(Histogram::from_value)
        };
        Ok(OccupancyHistograms {
            rob: field("rob")?,
            iq: field("iq")?,
            lsq: field("lsq")?,
        })
    }
}

/// Process-wide switch for the *optional* profiling artifacts
/// (occupancy and latency histograms). Class counting ignores this —
/// it is always on and always cheap.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns detailed profiling on or off for the whole process. The CLI
/// flips this once before a run; the simulators read it at run start,
/// so mid-run flips only affect runs that start afterwards.
pub fn set_enabled(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// `true` when detailed profiling artifacts should be recorded.
pub fn enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_stay_kebab_case() {
        for class in CycleClass::ALL {
            assert_eq!(CycleClass::from_name(class.name()), Some(class));
            assert!(
                class
                    .name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                class.name()
            );
        }
        assert_eq!(CycleClass::from_name("nope"), None);
    }

    #[test]
    fn charge_merge_total_are_consistent() {
        let mut a = ClassCounts::new();
        a.charge(CycleClass::Retire, 10);
        a.charge(CycleClass::MemLatency, 5);
        let mut b = ClassCounts::new();
        b.charge(CycleClass::Retire, 1);
        b.charge(CycleClass::IdleSkipped, 4);
        a.merge(&b);
        assert_eq!(a.get(CycleClass::Retire), 11);
        assert_eq!(a.get(CycleClass::IdleSkipped), 4);
        assert_eq!(a.total(), 20);
        assert!(!a.is_empty());
        assert!(ClassCounts::new().is_empty());
    }

    #[test]
    fn class_counts_serde_round_trips() {
        let mut c = ClassCounts::new();
        c.charge(CycleClass::Frontend, 3);
        c.charge(CycleClass::RobFull, 7);
        let v = c.to_value();
        assert_eq!(v.get("frontend").and_then(Value::as_u64), Some(3));
        let back = ClassCounts::from_value(&v).expect("round trip");
        assert_eq!(back, c);
        assert!(ClassCounts::from_value(&Value::Object(vec![(
            "bogus-class".into(),
            Value::UInt(1)
        )]))
        .is_err());
    }

    #[test]
    fn occupancy_bundle_merges_and_round_trips() {
        let mut a = OccupancyHistograms::default();
        a.rob.record_n(40, 100);
        a.iq.record(3);
        let mut b = OccupancyHistograms::default();
        b.rob.record(1);
        b.lsq.record_n(9, 2);
        a.merge(&b);
        assert_eq!(a.rob.count(), 101);
        assert_eq!(a.lsq.count(), 2);
        let back = OccupancyHistograms::from_value(&a.to_value()).expect("round trip");
        assert_eq!(back, a);
    }

    #[test]
    fn profiling_flag_flips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
