//! Property tests for the energy model.

use proptest::prelude::*;

use hetsim_cpu::CoreStats;
use hetsim_mem::MemStats;
use hetsim_power::account::{CpuEnergyModel, GpuActivity, GpuEnergyModel};
use hetsim_power::assignment::{DeviceAssignment, VoltageFactors};

fn arbitrary_stats() -> impl Strategy<Value = (CoreStats, MemStats)> {
    (0u64..100_000, 0u64..100_000, 0u64..50_000, 0u64..20_000).prop_map(
        |(committed, issues, loads, branches)| {
            let stats = CoreStats {
                cycles: committed.max(1),
                committed,
                dispatched: committed,
                fetch_groups: committed / 3,
                issues,
                alu_slow_ops: committed / 4,
                fp_mul_ops: committed / 8,
                loads,
                stores: loads / 3,
                branches,
                int_rf_reads: issues,
                int_rf_writes: issues / 2,
                ..CoreStats::default()
            };
            let mut mem = MemStats::default();
            mem.dl1_slow.accesses = loads + loads / 3;
            mem.l2.accesses = loads / 10;
            mem.l3.accesses = loads / 50;
            mem.dram_accesses = loads / 200;
            (stats, mem)
        },
    )
}

proptest! {
    /// Energies are non-negative and the breakdown sums to the total for
    /// arbitrary event counts, every design assignment, and any runtime.
    #[test]
    fn breakdown_sums_and_positivity((stats, mem) in arbitrary_stats(), us in 1.0f64..10_000.0) {
        let seconds = us * 1e-6;
        for assignment in [
            DeviceAssignment::all_cmos(),
            DeviceAssignment::all_tfet(),
            DeviceAssignment::hetcore_cpu(true),
            DeviceAssignment::l3_only(),
            DeviceAssignment::high_vt_fus(),
            DeviceAssignment::hetcore_fast_alu(),
        ] {
            let e = CpuEnergyModel::new(assignment).energy(&stats, &mem, seconds);
            prop_assert!(e.core_dynamic_j >= 0.0);
            prop_assert!(e.core_leakage_j > 0.0, "leakage always accrues");
            let parts = e.core_dynamic_j + e.core_leakage_j + e.l2_dynamic_j
                + e.l2_leakage_j + e.l3_dynamic_j + e.l3_leakage_j;
            prop_assert!((parts - e.total_j()).abs() <= 1e-15 * parts.max(1e-30));
        }
    }

    /// Energy is monotone in events: adding work never reduces dynamic
    /// energy.
    #[test]
    fn dynamic_energy_is_monotone_in_events((stats, mem) in arbitrary_stats(), extra in 1u64..10_000) {
        let model = CpuEnergyModel::new(DeviceAssignment::all_cmos());
        let e1 = model.energy(&stats, &mem, 1e-5);
        let mut more = stats;
        more.fp_mul_ops += extra;
        more.loads += extra;
        let mut mem2 = mem;
        mem2.dl1_slow.accesses += extra;
        let e2 = model.energy(&more, &mem2, 1e-5);
        prop_assert!(e2.dynamic_j() > e1.dynamic_j());
        prop_assert!((e2.leakage_j() - e1.leakage_j()).abs() < 1e-18, "leakage unchanged");
    }

    /// A TFET assignment never consumes more than the CMOS baseline for
    /// the same events and runtime.
    #[test]
    fn tfet_units_never_cost_more((stats, mem) in arbitrary_stats(), us in 1.0f64..1000.0) {
        let seconds = us * 1e-6;
        let cmos = CpuEnergyModel::new(DeviceAssignment::all_cmos()).energy(&stats, &mem, seconds);
        let het = CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false)).energy(&stats, &mem, seconds);
        prop_assert!(het.total_j() <= cmos.total_j());
    }

    /// Voltage scaling is multiplicative: doubling the squared-voltage
    /// factor doubles dynamic energy on the affected rail.
    #[test]
    fn voltage_factors_scale_linearly((stats, mem) in arbitrary_stats()) {
        let base = CpuEnergyModel::new(DeviceAssignment::all_cmos()).energy(&stats, &mem, 1e-5);
        let scaled = CpuEnergyModel::new(DeviceAssignment::all_cmos())
            .with_voltages(VoltageFactors {
                cmos_dynamic: 2.0,
                tfet_dynamic: 1.0,
                cmos_leakage: 1.0,
                tfet_leakage: 1.0,
            })
            .energy(&stats, &mem, 1e-5);
        prop_assert!((scaled.dynamic_j() - 2.0 * base.dynamic_j()).abs() < 1e-12 * base.dynamic_j().max(1e-30));
    }

    /// GPU energy: leakage scales with the CU count, dynamic does not.
    #[test]
    fn gpu_leakage_scales_with_cus(insts in 1u64..1_000_000, cus in 1u32..32) {
        let act = |n: u32| GpuActivity {
            wavefront_insts: insts,
            thread_fma_ops: insts * 40,
            vector_rf_accesses: insts * 100,
            mem_insts: insts / 10,
            compute_units: n,
            seconds: 1e-4,
            ..GpuActivity::default()
        };
        let model = GpuEnergyModel::new(DeviceAssignment::all_cmos());
        let one = model.energy(&act(1));
        let many = model.energy(&act(cus));
        prop_assert!((many.leakage_j - one.leakage_j * f64::from(cus)).abs() < 1e-12);
        prop_assert!((many.dynamic_j - one.dynamic_j).abs() < 1e-15);
    }
}
