//! The architectural unit taxonomy of the power model.
//!
//! CPU units follow McPAT's decomposition of an out-of-order core plus the
//! cache levels the paper's Figure 8 reports (core incl. L1s, L2, L3). GPU
//! units follow GPUWattch's decomposition of a compute unit.

/// Power-model units of a CPU core and its caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuUnit {
    /// Instruction fetch: IL1 access path, branch predictor, BTB.
    Fetch,
    /// Decoders.
    Decode,
    /// Rename/allocate (RAT, free lists).
    Rename,
    /// Reorder buffer.
    Rob,
    /// Issue queue (wakeup/select CAM).
    IssueQueue,
    /// Load-store queue.
    Lsq,
    /// Integer register file.
    IntRf,
    /// Floating-point register file.
    FpRf,
    /// Simple integer ALUs (the unit HetCore may split into fast/slow
    /// clusters).
    Alu,
    /// Integer multiplier/divider.
    IntMulDiv,
    /// Floating-point units.
    Fpu,
    /// Load-store units (AGUs).
    Lsu,
    /// Instruction L1 array.
    Il1,
    /// Data L1 array (whole array for a conventional DL1; the slow
    /// partition for an asymmetric DL1).
    Dl1,
    /// The 4 KB CMOS fast way of the asymmetric DL1.
    Dl1Fast,
    /// Private L2.
    L2,
    /// L3 slice.
    L3,
}

impl CpuUnit {
    /// Every CPU unit.
    pub const ALL: [CpuUnit; 17] = [
        CpuUnit::Fetch,
        CpuUnit::Decode,
        CpuUnit::Rename,
        CpuUnit::Rob,
        CpuUnit::IssueQueue,
        CpuUnit::Lsq,
        CpuUnit::IntRf,
        CpuUnit::FpRf,
        CpuUnit::Alu,
        CpuUnit::IntMulDiv,
        CpuUnit::Fpu,
        CpuUnit::Lsu,
        CpuUnit::Il1,
        CpuUnit::Dl1,
        CpuUnit::Dl1Fast,
        CpuUnit::L2,
        CpuUnit::L3,
    ];

    /// The Figure 8 bucket this unit's energy reports under.
    pub fn bucket(self) -> EnergyBucket {
        match self {
            CpuUnit::L2 => EnergyBucket::L2,
            CpuUnit::L3 => EnergyBucket::L3,
            _ => EnergyBucket::Core,
        }
    }

    /// The units HetCore's BaseHet moves to TFET (Table II: FPUs, ALUs,
    /// DL1, L2 and L3).
    pub fn tfet_in_basehet(self) -> bool {
        matches!(
            self,
            CpuUnit::Alu
                | CpuUnit::IntMulDiv
                | CpuUnit::Fpu
                | CpuUnit::Dl1
                | CpuUnit::L2
                | CpuUnit::L3
        )
    }
}

/// The reporting buckets of the paper's Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyBucket {
    /// Core, including the L1 caches.
    Core,
    /// Private L2.
    L2,
    /// Shared L3.
    L3,
}

/// Power-model units of a GPU (per compute unit plus globals), after
/// GPUWattch's decomposition of AMD Southern Islands hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuUnit {
    /// Wavefront fetch/decode/schedule.
    FetchSchedule,
    /// SIMD FMA lanes (the vector ALUs).
    SimdFma,
    /// Main vector register file.
    VectorRf,
    /// The small register-file cache of AdvHet (and the fair BaseCMOS).
    RfCache,
    /// Local data share (scratchpad).
    Lds,
    /// Memory pipeline: coalescer, L1 vector cache, interconnect.
    MemPipe,
}

impl GpuUnit {
    /// Every GPU unit.
    pub const ALL: [GpuUnit; 6] = [
        GpuUnit::FetchSchedule,
        GpuUnit::SimdFma,
        GpuUnit::VectorRf,
        GpuUnit::RfCache,
        GpuUnit::Lds,
        GpuUnit::MemPipe,
    ];

    /// The units HetCore's GPU BaseHet moves to TFET (Table II: SIMD FPUs
    /// and the register file).
    pub fn tfet_in_basehet(self) -> bool {
        matches!(self, GpuUnit::SimdFma | GpuUnit::VectorRf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_matches_figure8() {
        assert_eq!(CpuUnit::Fpu.bucket(), EnergyBucket::Core);
        assert_eq!(CpuUnit::Il1.bucket(), EnergyBucket::Core);
        assert_eq!(CpuUnit::Dl1.bucket(), EnergyBucket::Core);
        assert_eq!(CpuUnit::L2.bucket(), EnergyBucket::L2);
        assert_eq!(CpuUnit::L3.bucket(), EnergyBucket::L3);
    }

    #[test]
    fn basehet_tfet_set_matches_table_ii() {
        let tfet: Vec<_> = CpuUnit::ALL
            .iter()
            .filter(|u| u.tfet_in_basehet())
            .collect();
        assert_eq!(tfet.len(), 6); // ALU, IntMulDiv, FPU, DL1, L2, L3
        assert!(!CpuUnit::Fetch.tfet_in_basehet(), "front end stays CMOS");
        assert!(!CpuUnit::Il1.tfet_in_basehet(), "IL1 stays CMOS");
        assert!(
            !CpuUnit::Dl1Fast.tfet_in_basehet(),
            "fast way is the CMOS way"
        );
    }

    #[test]
    fn gpu_basehet_moves_fma_and_rf() {
        assert!(GpuUnit::SimdFma.tfet_in_basehet());
        assert!(GpuUnit::VectorRf.tfet_in_basehet());
        assert!(!GpuUnit::RfCache.tfet_in_basehet(), "RF cache stays CMOS");
        assert!(!GpuUnit::MemPipe.tfet_in_basehet());
    }
}
