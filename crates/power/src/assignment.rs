//! Unit-to-device assignments and the resulting energy scalings.
//!
//! Each unit of a HetCore design is built in one of three implementations;
//! the assignment scales the baseline CMOS energies from [`crate::mcpat`]:
//!
//! * **CMOS** — the dual-V_t baseline (factor 1 on both energy terms).
//! * **All-high-V_t CMOS** (the BaseHighVt study): same dynamic energy as
//!   regular CMOS (Section III-B), 10x lower leakage (Table IV notes).
//! * **TFET** — conservatively 4x lower dynamic energy (Section V-B) and
//!   10x lower leakage (Section VI).
//!
//! Voltage factors for DVFS and process-variation guardbands are applied
//! per rail on top of the implementation factors.

use hetsim_device::scaling::PowerAssumption;

use crate::units::{CpuUnit, GpuUnit};

/// The device implementation of one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UnitImpl {
    /// Dual-V_t Si-CMOS (the baseline).
    #[default]
    Cmos,
    /// 100% high-V_t Si-CMOS: baseline dynamic, 10x lower leakage, slower.
    HighVt,
    /// HetJTFET at V_TFET.
    Tfet,
}

impl UnitImpl {
    /// Dynamic-energy factor vs. the CMOS baseline.
    pub fn dynamic_factor(self, assumption: PowerAssumption) -> f64 {
        match self {
            UnitImpl::Cmos => 1.0,
            // High-Vt transistors consume about the same dynamic energy as
            // regular-Vt (Section III-B).
            UnitImpl::HighVt => 1.0,
            UnitImpl::Tfet => 1.0 / assumption.dynamic_energy_ratio(),
        }
    }

    /// Leakage-power factor vs. the CMOS baseline.
    pub fn leakage_factor(self, assumption: PowerAssumption) -> f64 {
        match self {
            UnitImpl::Cmos => 1.0,
            UnitImpl::HighVt => 0.1,
            UnitImpl::Tfet => 1.0 / assumption.leakage_power_ratio(),
        }
    }
}

/// Per-rail voltage factors for DVFS / guardbands, relative to the nominal
/// operating point (V_CMOS = 0.73 V, V_TFET = 0.44 V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageFactors {
    /// `(V_CMOS / V_CMOS_nominal)^2` — dynamic-energy factor for CMOS
    /// units.
    pub cmos_dynamic: f64,
    /// `(V_TFET / V_TFET_nominal)^2`.
    pub tfet_dynamic: f64,
    /// Linear leakage-power factor for CMOS units.
    pub cmos_leakage: f64,
    /// Linear leakage-power factor for TFET units.
    pub tfet_leakage: f64,
}

impl Default for VoltageFactors {
    fn default() -> Self {
        VoltageFactors {
            cmos_dynamic: 1.0,
            tfet_dynamic: 1.0,
            cmos_leakage: 1.0,
            tfet_leakage: 1.0,
        }
    }
}

impl VoltageFactors {
    /// Factors for supplies moved from nominal `v0` to `v`, per rail:
    /// CV^2 on dynamic energy, linear on leakage power.
    pub fn from_voltages(v_cmos: f64, v_cmos0: f64, v_tfet: f64, v_tfet0: f64) -> Self {
        VoltageFactors {
            cmos_dynamic: (v_cmos / v_cmos0).powi(2),
            tfet_dynamic: (v_tfet / v_tfet0).powi(2),
            cmos_leakage: v_cmos / v_cmos0,
            tfet_leakage: v_tfet / v_tfet0,
        }
    }
}

/// A complete device assignment for a CPU design.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceAssignment {
    cpu: Vec<(CpuUnit, UnitImpl)>,
    gpu: Vec<(GpuUnit, UnitImpl)>,
    /// The TFET power assumption (conservative 4x by default).
    pub assumption: PowerAssumption,
    /// Voltage factors relative to nominal.
    pub voltages: VoltageFactors,
}

impl DeviceAssignment {
    fn uniform(imp: UnitImpl) -> Self {
        DeviceAssignment {
            cpu: CpuUnit::ALL.iter().map(|&u| (u, imp)).collect(),
            gpu: GpuUnit::ALL.iter().map(|&u| (u, imp)).collect(),
            assumption: PowerAssumption::Conservative,
            voltages: VoltageFactors::default(),
        }
    }

    /// Everything in dual-V_t CMOS (BaseCMOS).
    pub fn all_cmos() -> Self {
        DeviceAssignment::uniform(UnitImpl::Cmos)
    }

    /// Everything in TFET (BaseTFET). The paper gives BaseTFET the full 8x
    /// dynamic-*power* advantage at half the clock (Section VI), which is a
    /// 4x dynamic-*energy* factor per operation — the same per-event factor
    /// as Table I's ALU energy ratio. Leakage power is 10x lower but
    /// integrates over the ~2x longer runtime.
    pub fn all_tfet() -> Self {
        DeviceAssignment::uniform(UnitImpl::Tfet)
    }

    /// The BaseHet/AdvHet CPU assignment (Table II): FPUs, ALUs, DL1, L2,
    /// L3 in TFET; `asymmetric_dl1` keeps the 4 KB fast way in CMOS and is
    /// set for AdvHet.
    pub fn hetcore_cpu(asymmetric_dl1: bool) -> Self {
        let mut a = DeviceAssignment::all_cmos();
        for (u, imp) in a.cpu.iter_mut() {
            if u.tfet_in_basehet() {
                *imp = UnitImpl::Tfet;
            }
        }
        // The fast way exists only in the asymmetric design and is CMOS;
        // mark it TFET-irrelevant either way (it stays CMOS).
        let _ = asymmetric_dl1;
        a
    }

    /// BaseL3: only the L3 in TFET (Table IV).
    pub fn l3_only() -> Self {
        let mut a = DeviceAssignment::all_cmos();
        a.set_cpu(CpuUnit::L3, UnitImpl::Tfet);
        a
    }

    /// BaseHighVt: FPUs and ALUs in 100% high-V_t CMOS (Table IV).
    pub fn high_vt_fus() -> Self {
        let mut a = DeviceAssignment::all_cmos();
        a.set_cpu(CpuUnit::Fpu, UnitImpl::HighVt);
        a.set_cpu(CpuUnit::Alu, UnitImpl::HighVt);
        a.set_cpu(CpuUnit::IntMulDiv, UnitImpl::HighVt);
        a
    }

    /// BaseHet-FastALU: like HetCore but with all ALUs in CMOS.
    pub fn hetcore_fast_alu() -> Self {
        let mut a = DeviceAssignment::hetcore_cpu(false);
        a.set_cpu(CpuUnit::Alu, UnitImpl::Cmos);
        a
    }

    /// The GPU BaseHet/AdvHet assignment (Table II): SIMD FPUs and the
    /// vector RF in TFET.
    pub fn hetcore_gpu() -> Self {
        let mut a = DeviceAssignment::all_cmos();
        for (u, imp) in a.gpu.iter_mut() {
            if u.tfet_in_basehet() {
                *imp = UnitImpl::Tfet;
            }
        }
        a
    }

    /// Overrides one CPU unit's implementation.
    pub fn set_cpu(&mut self, unit: CpuUnit, imp: UnitImpl) -> &mut Self {
        for (u, i) in self.cpu.iter_mut() {
            if *u == unit {
                *i = imp;
            }
        }
        self
    }

    /// Overrides one GPU unit's implementation.
    pub fn set_gpu(&mut self, unit: GpuUnit, imp: UnitImpl) -> &mut Self {
        for (u, i) in self.gpu.iter_mut() {
            if *u == unit {
                *i = imp;
            }
        }
        self
    }

    /// The implementation of a CPU unit.
    pub fn cpu_impl(&self, unit: CpuUnit) -> UnitImpl {
        self.cpu
            .iter()
            .find(|(u, _)| *u == unit)
            .map(|(_, i)| *i)
            .expect("every CPU unit is assigned")
    }

    /// The implementation of a GPU unit.
    pub fn gpu_impl(&self, unit: GpuUnit) -> UnitImpl {
        self.gpu
            .iter()
            .find(|(u, _)| *u == unit)
            .map(|(_, i)| *i)
            .expect("every GPU unit is assigned")
    }

    /// Combined dynamic-energy factor for a CPU unit (implementation x
    /// rail voltage).
    pub fn cpu_dynamic_factor(&self, unit: CpuUnit) -> f64 {
        let imp = self.cpu_impl(unit);
        let volt = match imp {
            UnitImpl::Tfet => self.voltages.tfet_dynamic,
            _ => self.voltages.cmos_dynamic,
        };
        imp.dynamic_factor(self.assumption) * volt
    }

    /// Combined leakage-power factor for a CPU unit.
    pub fn cpu_leakage_factor(&self, unit: CpuUnit) -> f64 {
        let imp = self.cpu_impl(unit);
        let volt = match imp {
            UnitImpl::Tfet => self.voltages.tfet_leakage,
            _ => self.voltages.cmos_leakage,
        };
        imp.leakage_factor(self.assumption) * volt
    }

    /// Combined dynamic-energy factor for a GPU unit.
    pub fn gpu_dynamic_factor(&self, unit: GpuUnit) -> f64 {
        let imp = self.gpu_impl(unit);
        let volt = match imp {
            UnitImpl::Tfet => self.voltages.tfet_dynamic,
            _ => self.voltages.cmos_dynamic,
        };
        imp.dynamic_factor(self.assumption) * volt
    }

    /// Combined leakage-power factor for a GPU unit.
    pub fn gpu_leakage_factor(&self, unit: GpuUnit) -> f64 {
        let imp = self.gpu_impl(unit);
        let volt = match imp {
            UnitImpl::Tfet => self.voltages.tfet_leakage,
            _ => self.voltages.cmos_leakage,
        };
        imp.leakage_factor(self.assumption) * volt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basecmos_factors_are_unity() {
        let a = DeviceAssignment::all_cmos();
        for u in CpuUnit::ALL {
            assert_eq!(a.cpu_dynamic_factor(u), 1.0);
            assert_eq!(a.cpu_leakage_factor(u), 1.0);
        }
    }

    #[test]
    fn hetcore_moves_table_ii_units() {
        let a = DeviceAssignment::hetcore_cpu(true);
        assert_eq!(a.cpu_impl(CpuUnit::Fpu), UnitImpl::Tfet);
        assert_eq!(a.cpu_impl(CpuUnit::Alu), UnitImpl::Tfet);
        assert_eq!(a.cpu_impl(CpuUnit::Dl1), UnitImpl::Tfet);
        assert_eq!(a.cpu_impl(CpuUnit::L2), UnitImpl::Tfet);
        assert_eq!(a.cpu_impl(CpuUnit::L3), UnitImpl::Tfet);
        assert_eq!(a.cpu_impl(CpuUnit::Fetch), UnitImpl::Cmos);
        assert_eq!(a.cpu_impl(CpuUnit::Dl1Fast), UnitImpl::Cmos);
        assert_eq!(a.cpu_impl(CpuUnit::IntRf), UnitImpl::Cmos);
    }

    #[test]
    fn tfet_units_use_conservative_4x_dynamic() {
        let a = DeviceAssignment::hetcore_cpu(false);
        assert!((a.cpu_dynamic_factor(CpuUnit::Fpu) - 0.25).abs() < 1e-12);
        assert!((a.cpu_leakage_factor(CpuUnit::Fpu) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn basetfet_uses_4x_energy_factor() {
        let a = DeviceAssignment::all_tfet();
        assert!((a.cpu_dynamic_factor(CpuUnit::Fpu) - 0.25).abs() < 1e-12);
        assert_eq!(
            a.cpu_impl(CpuUnit::Fetch),
            UnitImpl::Tfet,
            "everything is TFET"
        );
    }

    #[test]
    fn high_vt_keeps_dynamic_cuts_leakage() {
        let a = DeviceAssignment::high_vt_fus();
        assert_eq!(a.cpu_dynamic_factor(CpuUnit::Alu), 1.0);
        assert!((a.cpu_leakage_factor(CpuUnit::Alu) - 0.1).abs() < 1e-12);
        assert_eq!(a.cpu_leakage_factor(CpuUnit::L2), 1.0);
    }

    #[test]
    fn voltage_factors_apply_to_the_right_rail() {
        let mut a = DeviceAssignment::hetcore_cpu(false);
        a.voltages = VoltageFactors::from_voltages(0.85, 0.73, 0.53, 0.44);
        // A CMOS unit scales by (0.85/0.73)^2 only.
        let f = a.cpu_dynamic_factor(CpuUnit::Fetch);
        assert!((f - (0.85f64 / 0.73).powi(2)).abs() < 1e-12);
        // A TFET unit scales by 1/4 x (0.53/0.44)^2.
        let t = a.cpu_dynamic_factor(CpuUnit::Fpu);
        assert!((t - 0.25 * (0.53f64 / 0.44).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn gpu_assignment_moves_fma_and_rf() {
        let a = DeviceAssignment::hetcore_gpu();
        assert_eq!(a.gpu_impl(GpuUnit::SimdFma), UnitImpl::Tfet);
        assert_eq!(a.gpu_impl(GpuUnit::VectorRf), UnitImpl::Tfet);
        assert_eq!(a.gpu_impl(GpuUnit::RfCache), UnitImpl::Cmos);
        assert_eq!(a.gpu_impl(GpuUnit::MemPipe), UnitImpl::Cmos);
    }
}
