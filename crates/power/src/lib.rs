//! Event-driven power and energy model (the McPAT / GPUWattch substitute).
//!
//! The paper obtains power numbers from McPAT (CPU, HP-CMOS process) and
//! GPUWattch (GPU). This crate replaces both with an event-energy model:
//! every architectural unit has a *dynamic energy per event* and a *leakage
//! power*, calibrated so a BaseCMOS core shows the dynamic/leakage split
//! and per-unit proportions characteristic of a dual-V_t high-performance
//! core at 15 nm (see [`mcpat`] for the calibration notes). Event counts
//! come from the simulators; leakage integrates over simulated seconds.
//!
//! Device heterogeneity enters through a [`assignment::DeviceAssignment`]:
//! each unit is built in CMOS, all-high-V_t CMOS, or TFET, which scales its
//! dynamic energy (conservatively 4x lower for TFET, paper Section V-B) and
//! leakage power (10x lower, Section VI). Voltage scaling for DVFS and
//! process-variation guardbands applies CV^2 to dynamic energy and a linear
//! factor to leakage power per rail.
//!
//! * [`units`] — the unit taxonomy for CPUs and GPUs.
//! * [`mcpat`] — baseline CMOS energies/leakages (with calibration notes).
//! * [`assignment`] — unit -> device-implementation maps.
//! * [`account`] — turning event counts + runtime into the paper's
//!   energy breakdowns, ED and ED^2.
//!
//! # Example
//!
//! ```
//! use hetsim_power::assignment::DeviceAssignment;
//! use hetsim_power::account::{CpuEnergyModel, dram_energy_j};
//! use hetsim_cpu::CoreStats;
//! use hetsim_mem::MemStats;
//!
//! let model = CpuEnergyModel::new(DeviceAssignment::all_cmos());
//! let stats = CoreStats { cycles: 1000, committed: 1500, ..Default::default() };
//! let mem = MemStats::default();
//! let breakdown = model.energy(&stats, &mem, 1000.0 / 2.0e9);
//! assert!(breakdown.total_j() > 0.0);
//! let _ = dram_energy_j(&mem);
//! ```

#![warn(missing_docs)]

pub mod account;
pub mod assignment;
pub mod mcpat;
pub mod units;

pub use account::{CpuEnergyModel, EnergyBreakdown, GpuActivity, GpuEnergyModel};
pub use assignment::{DeviceAssignment, UnitImpl};
pub use units::{CpuUnit, GpuUnit};
