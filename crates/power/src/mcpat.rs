//! Baseline CMOS energy/leakage constants (the McPAT/GPUWattch stand-in).
//!
//! # Calibration notes
//!
//! Absolute joules are not the paper's claim — normalized energies are —
//! so these constants are chosen for *proportions*, validated by tests:
//!
//! 1. On a typical SPLASH-2-like run, a BaseCMOS core's energy splits
//!    roughly 60% dynamic / 40% leakage. This single ratio, combined with
//!    the paper's conservative 4x dynamic / 10x leakage TFET factors,
//!    reproduces the paper's BaseTFET result: `0.6/4 + 0.4/5 = 0.23`, a
//!    76-77% energy reduction (Figure 8's BaseTFET bar).
//! 2. The L3 dominates leakage (largest SRAM array), then L2, then core
//!    logic — caches are "the majority of the leakage power" (Section
//!    IV-B3) even built from high-V_t cells.
//! 3. FPU and ALU dominate *functional-unit* dynamic energy, making them
//!    worthwhile TFET targets (Section IV-B1/2).
//! 4. The 4 KB fast way of the asymmetric DL1 costs about one third of a
//!    full 32 KB DL1 access (Section IV-C1 cites CACTI).
//!
//! The BaseCMOS leakage values already reflect the paper's dual-V_t
//! convention: caches use high-V_t cells and core logic is 60% high-V_t
//! (Table IV, BaseCMOS row). The TFET and all-high-V_t scalings are
//! applied on top by [`crate::assignment`].

use crate::units::{CpuUnit, GpuUnit};

/// Per-event dynamic energies and per-unit leakage powers for the CPU at
/// the BaseCMOS operating point (0.73 V, 2 GHz, 15 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBaseline {
    /// Fetch group: predictor + BTB + sequencing (pJ).
    pub fetch_pj: f64,
    /// Per dispatched instruction: decode (pJ).
    pub decode_pj: f64,
    /// Per dispatched instruction: rename/RAT (pJ).
    pub rename_pj: f64,
    /// Per dispatched instruction: ROB allocate + commit (pJ).
    pub rob_pj: f64,
    /// Per issue: IQ wakeup/select (pJ).
    pub iq_pj: f64,
    /// Per memory op: LSQ search/insert (pJ).
    pub lsq_pj: f64,
    /// Integer RF read / write (pJ).
    pub int_rf_read_pj: f64,
    /// Integer RF write (pJ).
    pub int_rf_write_pj: f64,
    /// FP RF read (pJ).
    pub fp_rf_read_pj: f64,
    /// FP RF write (pJ).
    pub fp_rf_write_pj: f64,
    /// Simple ALU op (pJ).
    pub alu_pj: f64,
    /// Integer multiply (pJ).
    pub int_mul_pj: f64,
    /// Integer divide (pJ).
    pub int_div_pj: f64,
    /// FP add (pJ).
    pub fp_add_pj: f64,
    /// FP multiply/FMA (pJ).
    pub fp_mul_pj: f64,
    /// FP divide (pJ).
    pub fp_div_pj: f64,
    /// AGU/LSU op (pJ).
    pub lsu_pj: f64,
    /// IL1 access (pJ).
    pub il1_pj: f64,
    /// Full DL1 access — or slow-partition access of the asymmetric DL1
    /// (pJ).
    pub dl1_pj: f64,
    /// Fast-way (4 KB direct-mapped) access of the asymmetric DL1 (pJ).
    /// A direct-mapped 4 KB array reads a single way of a small array;
    /// CACTI puts it well below the paper's 1/3-of-DL1 *latency* ratio.
    pub dl1_fast_pj: f64,
    /// L2 access (pJ).
    pub l2_pj: f64,
    /// L3 access (pJ).
    pub l3_pj: f64,
    /// DRAM access (pJ) — accounted separately; the paper's Figure 8
    /// reports core/L2/L3 only.
    pub dram_pj: f64,
}

/// The calibrated CPU baseline.
pub const CPU_BASELINE: CpuBaseline = CpuBaseline {
    fetch_pj: 16.0,
    decode_pj: 6.0,
    rename_pj: 9.0,
    rob_pj: 11.0,
    iq_pj: 14.0,
    lsq_pj: 12.0,
    int_rf_read_pj: 6.0,
    int_rf_write_pj: 9.0,
    fp_rf_read_pj: 10.0,
    fp_rf_write_pj: 14.0,
    alu_pj: 30.0,
    int_mul_pj: 35.0,
    int_div_pj: 80.0,
    fp_add_pj: 55.0,
    fp_mul_pj: 70.0,
    fp_div_pj: 160.0,
    lsu_pj: 8.0,
    il1_pj: 20.0,
    dl1_pj: 40.0,
    dl1_fast_pj: 8.0,
    l2_pj: 70.0,
    l3_pj: 180.0,
    dram_pj: 4000.0,
};

/// Leakage power (mW) of a CPU unit at the BaseCMOS design point: caches
/// in high-V_t cells, core logic 60% high-V_t.
pub fn cpu_leakage_mw(unit: CpuUnit) -> f64 {
    match unit {
        CpuUnit::Fetch => 44.0,
        CpuUnit::Decode => 16.0,
        CpuUnit::Rename => 16.0,
        CpuUnit::Rob => 20.0,
        CpuUnit::IssueQueue => 24.0,
        CpuUnit::Lsq => 12.0,
        CpuUnit::IntRf => 8.0,
        CpuUnit::FpRf => 10.0,
        CpuUnit::Alu => 12.0,
        CpuUnit::IntMulDiv => 8.0,
        CpuUnit::Fpu => 24.0,
        CpuUnit::Lsu => 6.0,
        CpuUnit::Il1 => 12.0,
        CpuUnit::Dl1 => 16.0,
        CpuUnit::Dl1Fast => 2.0,
        CpuUnit::L2 => 56.0,
        CpuUnit::L3 => 200.0,
    }
}

/// Extra FP-RF leakage per additional rename register (mW), for the
/// enlarged 128-entry FP RF of the Enh designs.
pub const FP_RF_LEAK_PER_REG_MW: f64 = 10.0 / 80.0;

/// Extra ROB leakage per additional entry (mW), for the 192-entry ROB.
pub const ROB_LEAK_PER_ENTRY_MW: f64 = 20.0 / 160.0;

/// Per-event dynamic energies and leakage for the GPU at its BaseCMOS
/// operating point (0.73 V, 1 GHz, 15 nm), per compute unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuBaseline {
    /// Per wavefront instruction: fetch/decode/schedule (pJ).
    pub fetch_schedule_pj: f64,
    /// Per thread FMA/VALU lane operation (pJ).
    pub simd_fma_pj: f64,
    /// Per thread vector-RF read or write (pJ).
    pub vector_rf_pj: f64,
    /// Per thread RF-cache access (pJ).
    pub rf_cache_pj: f64,
    /// Per thread LDS access (pJ).
    pub lds_pj: f64,
    /// Per wavefront memory instruction: coalescer + vector cache (pJ).
    pub mem_pipe_pj: f64,
    /// Per DRAM access (pJ) — accounted separately.
    pub dram_pj: f64,
}

/// The calibrated GPU baseline.
///
/// The vector RF is sized so it draws on the order of 10% of GPU power
/// (Section IV-B4 cites up to 10%), and the SIMD FMA lanes dominate
/// compute energy.
pub const GPU_BASELINE: GpuBaseline = GpuBaseline {
    fetch_schedule_pj: 280.0,
    simd_fma_pj: 4.5,
    vector_rf_pj: 2.2,
    rf_cache_pj: 0.3,
    lds_pj: 7.0,
    mem_pipe_pj: 550.0,
    dram_pj: 4000.0,
};

/// Leakage power (mW) of a GPU unit, per compute unit, at the BaseCMOS
/// design point.
pub fn gpu_leakage_mw(unit: GpuUnit) -> f64 {
    match unit {
        GpuUnit::FetchSchedule => 15.0,
        GpuUnit::SimdFma => 75.0,
        GpuUnit::VectorRf => 60.0,
        GpuUnit::RfCache => 3.0,
        GpuUnit::Lds => 24.0,
        GpuUnit::MemPipe => 45.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l3_dominates_cache_leakage() {
        assert!(cpu_leakage_mw(CpuUnit::L3) > cpu_leakage_mw(CpuUnit::L2));
        assert!(cpu_leakage_mw(CpuUnit::L2) > cpu_leakage_mw(CpuUnit::Dl1));
    }

    #[test]
    fn caches_dominate_total_leakage() {
        // Section IV-B3: "Caches contribute the majority of the leakage".
        let caches: f64 = [
            CpuUnit::Il1,
            CpuUnit::Dl1,
            CpuUnit::Dl1Fast,
            CpuUnit::L2,
            CpuUnit::L3,
        ]
        .iter()
        .map(|&u| cpu_leakage_mw(u))
        .sum();
        let total: f64 = CpuUnit::ALL.iter().map(|&u| cpu_leakage_mw(u)).sum();
        assert!(caches / total > 0.5, "cache share {}", caches / total);
    }

    #[test]
    fn fpu_dominates_fu_dynamic_energy() {
        let b = CPU_BASELINE;
        assert!(b.fp_mul_pj > b.alu_pj);
        assert!(b.fp_div_pj > b.fp_mul_pj);
    }

    #[test]
    fn fast_way_is_much_cheaper_than_dl1() {
        let ratio = CPU_BASELINE.dl1_fast_pj / CPU_BASELINE.dl1_pj;
        assert!(
            (0.1..0.35).contains(&ratio),
            "fast/DL1 energy ratio {ratio}"
        );
    }

    #[test]
    fn all_constants_positive() {
        let b = CPU_BASELINE;
        for v in [
            b.fetch_pj,
            b.decode_pj,
            b.rename_pj,
            b.rob_pj,
            b.iq_pj,
            b.lsq_pj,
            b.int_rf_read_pj,
            b.int_rf_write_pj,
            b.fp_rf_read_pj,
            b.fp_rf_write_pj,
            b.alu_pj,
            b.int_mul_pj,
            b.int_div_pj,
            b.fp_add_pj,
            b.fp_mul_pj,
            b.fp_div_pj,
            b.lsu_pj,
            b.il1_pj,
            b.dl1_pj,
            b.dl1_fast_pj,
            b.l2_pj,
            b.l3_pj,
            b.dram_pj,
        ] {
            assert!(v > 0.0);
        }
        for u in CpuUnit::ALL {
            assert!(cpu_leakage_mw(u) > 0.0);
        }
        for u in GpuUnit::ALL {
            assert!(gpu_leakage_mw(u) > 0.0);
        }
    }

    #[test]
    fn gpu_rf_is_a_large_consumer() {
        // The RF should be a significant leakage block (it's a huge SRAM).
        assert!(
            gpu_leakage_mw(GpuUnit::VectorRf)
                >= 0.25 * {
                    let total: f64 = GpuUnit::ALL.iter().map(|&u| gpu_leakage_mw(u)).sum();
                    total
                }
        );
    }
}
