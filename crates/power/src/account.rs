//! Energy accounting: event counts + runtime -> the paper's metrics.
//!
//! [`CpuEnergyModel`] turns one core's [`CoreStats`] + [`MemStats`] +
//! simulated seconds into the Figure 8 breakdown (core/L2/L3, each split
//! into dynamic and leakage). [`GpuEnergyModel`] does the same for a GPU
//! from a [`GpuActivity`] summary (Figure 11 reports dynamic vs. leakage).
//! DRAM energy is tracked separately: the paper's energy figures cover the
//! chip (core incl. L1s, L2, L3), not main memory.

use hetsim_cpu::CoreStats;
use hetsim_mem::MemStats;
use serde::{Deserialize, Serialize};

use crate::assignment::{DeviceAssignment, UnitImpl};
use crate::mcpat::{
    cpu_leakage_mw, gpu_leakage_mw, CPU_BASELINE, FP_RF_LEAK_PER_REG_MW, GPU_BASELINE,
    ROB_LEAK_PER_ENTRY_MW,
};
use crate::units::{CpuUnit, GpuUnit};

const PJ: f64 = 1.0e-12;
const MW: f64 = 1.0e-3;

/// The Figure 8 energy breakdown for one run (joules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core (incl. L1s) dynamic energy.
    pub core_dynamic_j: f64,
    /// Core (incl. L1s) leakage energy.
    pub core_leakage_j: f64,
    /// L2 dynamic energy.
    pub l2_dynamic_j: f64,
    /// L2 leakage energy.
    pub l2_leakage_j: f64,
    /// L3 dynamic energy.
    pub l3_dynamic_j: f64,
    /// L3 leakage energy.
    pub l3_leakage_j: f64,
    /// DRAM energy — reported separately, not part of [`Self::total_j`]
    /// (the paper's figures cover core/L2/L3 only).
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Chip energy: core + L2 + L3, dynamic + leakage (excludes DRAM).
    pub fn total_j(&self) -> f64 {
        self.core_dynamic_j
            + self.core_leakage_j
            + self.l2_dynamic_j
            + self.l2_leakage_j
            + self.l3_dynamic_j
            + self.l3_leakage_j
    }

    /// Total dynamic energy.
    pub fn dynamic_j(&self) -> f64 {
        self.core_dynamic_j + self.l2_dynamic_j + self.l3_dynamic_j
    }

    /// Total leakage energy.
    pub fn leakage_j(&self) -> f64 {
        self.core_leakage_j + self.l2_leakage_j + self.l3_leakage_j
    }

    /// Energy-delay product (J.s).
    pub fn ed(&self, seconds: f64) -> f64 {
        self.total_j() * seconds
    }

    /// Energy-delay-squared product (J.s^2).
    pub fn ed2(&self, seconds: f64) -> f64 {
        self.total_j() * seconds * seconds
    }

    /// Element-wise accumulation (multicore totals).
    pub fn merge(&mut self, o: &EnergyBreakdown) {
        self.core_dynamic_j += o.core_dynamic_j;
        self.core_leakage_j += o.core_leakage_j;
        self.l2_dynamic_j += o.l2_dynamic_j;
        self.l2_leakage_j += o.l2_leakage_j;
        self.l3_dynamic_j += o.l3_dynamic_j;
        self.l3_leakage_j += o.l3_leakage_j;
        self.dram_j += o.dram_j;
    }
}

/// DRAM energy for a run (joules), independent of core design.
pub fn dram_energy_j(mem: &MemStats) -> f64 {
    mem.dram_accesses as f64 * CPU_BASELINE.dram_pj * PJ
}

/// The CPU energy model: a device assignment over the McPAT-like baseline.
#[derive(Debug, Clone)]
pub struct CpuEnergyModel {
    assignment: DeviceAssignment,
    /// Whether the ALU cluster is dual-speed (1 CMOS + rest TFET): fast
    /// ALU ops then burn CMOS energy and a quarter of the ALU leakage
    /// stays CMOS.
    dual_speed_alu: bool,
    /// ROB entries (scales ROB leakage vs. the 160-entry baseline).
    rob_entries: u32,
    /// FP rename registers (scales FP-RF leakage vs. the 80-entry
    /// baseline).
    fp_regs: u32,
}

impl CpuEnergyModel {
    /// Model with the Table III baseline structure sizes.
    pub fn new(assignment: DeviceAssignment) -> Self {
        CpuEnergyModel {
            assignment,
            dual_speed_alu: false,
            rob_entries: 160,
            fp_regs: 80,
        }
    }

    /// Declares the dual-speed ALU cluster (AdvHet, BaseHet-Split).
    pub fn with_dual_speed_alu(mut self) -> Self {
        self.dual_speed_alu = true;
        self
    }

    /// Overrides structure sizes (the Enh designs' 192-entry ROB and
    /// 128-entry FP RF).
    pub fn with_structure(mut self, rob_entries: u32, fp_regs: u32) -> Self {
        self.rob_entries = rob_entries;
        self.fp_regs = fp_regs;
        self
    }

    /// Applies per-rail voltage factors (DVFS operating points, process-
    /// variation guardbands) on top of the device assignment.
    pub fn with_voltages(mut self, volts: crate::assignment::VoltageFactors) -> Self {
        self.assignment.voltages = volts;
        self
    }

    /// The device assignment.
    pub fn assignment(&self) -> &DeviceAssignment {
        &self.assignment
    }

    /// Computes the energy breakdown of one core's run.
    pub fn energy(&self, stats: &CoreStats, mem: &MemStats, seconds: f64) -> EnergyBreakdown {
        let a = &self.assignment;
        let b = &CPU_BASELINE;
        let df = |u: CpuUnit| a.cpu_dynamic_factor(u);

        // ---- Core dynamic ----
        let mut core_dyn = 0.0;
        core_dyn += stats.fetch_groups as f64 * b.fetch_pj * df(CpuUnit::Fetch);
        // Wrong-path fetches burn fetch + IL1 + decode energy before the
        // squash (front-end units are CMOS in every HetCore design).
        core_dyn += stats.wrong_path_fetch_groups as f64
            * (b.fetch_pj * df(CpuUnit::Fetch)
                + b.il1_pj * df(CpuUnit::Il1)
                + b.decode_pj * df(CpuUnit::Decode));
        core_dyn += stats.dispatched as f64
            * (b.decode_pj * df(CpuUnit::Decode)
                + b.rename_pj * df(CpuUnit::Rename)
                + b.rob_pj * df(CpuUnit::Rob));
        core_dyn += stats.issues as f64 * b.iq_pj * df(CpuUnit::IssueQueue);
        let mem_ops = (stats.loads + stats.stores) as f64;
        core_dyn += mem_ops * (b.lsq_pj * df(CpuUnit::Lsq) + b.lsu_pj * df(CpuUnit::Lsu));
        core_dyn += stats.int_rf_reads as f64 * b.int_rf_read_pj * df(CpuUnit::IntRf)
            + stats.int_rf_writes as f64 * b.int_rf_write_pj * df(CpuUnit::IntRf);
        core_dyn += stats.fp_rf_reads as f64 * b.fp_rf_read_pj * df(CpuUnit::FpRf)
            + stats.fp_rf_writes as f64 * b.fp_rf_write_pj * df(CpuUnit::FpRf);

        // ALU ops: in a dual-speed cluster the fast ops ran on the CMOS
        // ALU; otherwise all ops use the cluster's implementation. Branch
        // resolution also uses ALU energy.
        let alu_like = stats.alu_ops() + stats.branches;
        if self.dual_speed_alu {
            let fast = (stats.alu_fast_ops + stats.branches / 4) as f64;
            let slow = alu_like as f64 - fast;
            core_dyn += fast * b.alu_pj * a.voltages.cmos_dynamic;
            core_dyn += slow * b.alu_pj * df(CpuUnit::Alu);
        } else {
            core_dyn += alu_like as f64 * b.alu_pj * df(CpuUnit::Alu);
        }
        core_dyn += (stats.int_mul_ops as f64 * b.int_mul_pj
            + stats.int_div_ops as f64 * b.int_div_pj)
            * df(CpuUnit::IntMulDiv);
        core_dyn += (stats.fp_add_ops as f64 * b.fp_add_pj
            + stats.fp_mul_ops as f64 * b.fp_mul_pj
            + stats.fp_div_ops as f64 * b.fp_div_pj)
            * df(CpuUnit::Fpu);

        // L1 caches (part of the core bucket, Figure 8).
        core_dyn += mem.il1.accesses as f64 * b.il1_pj * df(CpuUnit::Il1);
        core_dyn += mem.dl1_fast.accesses as f64 * b.dl1_fast_pj * df(CpuUnit::Dl1Fast);
        core_dyn += mem.dl1_slow.accesses as f64 * b.dl1_pj * df(CpuUnit::Dl1);
        // Promotions move a line between partitions: one extra write each
        // side.
        core_dyn += mem.promotions as f64
            * (b.dl1_fast_pj * df(CpuUnit::Dl1Fast) + b.dl1_pj * df(CpuUnit::Dl1));

        // ---- L2 / L3 dynamic ----
        let l2_dyn = (mem.l2.accesses + mem.l2.fills) as f64 * b.l2_pj * df(CpuUnit::L2);
        let l3_dyn = (mem.l3.accesses + mem.l3.fills) as f64 * b.l3_pj * df(CpuUnit::L3);

        // ---- Leakage ----
        let mut core_leak = 0.0;
        for u in CpuUnit::ALL {
            if matches!(u, CpuUnit::L2 | CpuUnit::L3) {
                continue;
            }
            core_leak += self.unit_leak_mw(u) * seconds;
        }
        let l2_leak = self.unit_leak_mw(CpuUnit::L2) * seconds;
        let l3_leak = self.unit_leak_mw(CpuUnit::L3) * seconds;

        EnergyBreakdown {
            core_dynamic_j: core_dyn * PJ,
            core_leakage_j: core_leak * MW,
            l2_dynamic_j: l2_dyn * PJ,
            l2_leakage_j: l2_leak * MW,
            l3_dynamic_j: l3_dyn * PJ,
            l3_leakage_j: l3_leak * MW,
            dram_j: dram_energy_j(mem),
        }
    }

    /// Leakage energy of an *idle* core over `seconds` (the cores sitting
    /// out a serial phase leak but do not switch).
    pub fn idle_energy(&self, seconds: f64) -> EnergyBreakdown {
        self.energy(&CoreStats::default(), &MemStats::default(), seconds)
    }

    /// Effective leakage (mW) of one unit under this model, including the
    /// structure-size scalings and the dual-speed ALU split.
    fn unit_leak_mw(&self, u: CpuUnit) -> f64 {
        let base = match u {
            CpuUnit::Rob => {
                cpu_leakage_mw(u) + ROB_LEAK_PER_ENTRY_MW * (self.rob_entries as f64 - 160.0)
            }
            CpuUnit::FpRf => {
                cpu_leakage_mw(u) + FP_RF_LEAK_PER_REG_MW * (self.fp_regs as f64 - 80.0)
            }
            _ => cpu_leakage_mw(u),
        };
        if u == CpuUnit::Alu && self.dual_speed_alu {
            // One of four ALUs stays CMOS.
            let cmos = self.assignment.voltages.cmos_leakage;
            let tfet = UnitImpl::Tfet.leakage_factor(self.assignment.assumption)
                * self.assignment.voltages.tfet_leakage;
            return base * (0.25 * cmos + 0.75 * tfet);
        }
        base * self.assignment.cpu_leakage_factor(u)
    }
}

/// Event counts of one GPU run, as consumed by [`GpuEnergyModel`]. The
/// `hetcore` crate builds this from the GPU simulator's statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuActivity {
    /// Wavefront instructions scheduled (fetch/decode/schedule events).
    pub wavefront_insts: u64,
    /// Per-thread FMA/VALU lane operations.
    pub thread_fma_ops: u64,
    /// Per-thread vector-RF reads + writes (main RF only).
    pub vector_rf_accesses: u64,
    /// Per-thread RF-cache accesses.
    pub rf_cache_accesses: u64,
    /// Per-thread fast-partition accesses of a partitioned RF (a CMOS
    /// structure regardless of the vector RF's device assignment).
    pub rf_fast_accesses: u64,
    /// Per-thread LDS accesses.
    pub lds_accesses: u64,
    /// Wavefront memory instructions.
    pub mem_insts: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Number of compute units powered (leakage scales with this).
    pub compute_units: u32,
    /// Simulated seconds.
    pub seconds: f64,
}

/// GPU energy result (Figure 11 reports dynamic vs. leakage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuEnergy {
    /// Dynamic energy (J).
    pub dynamic_j: f64,
    /// Leakage energy (J).
    pub leakage_j: f64,
    /// DRAM energy (J), reported separately.
    pub dram_j: f64,
}

impl GpuEnergy {
    /// Chip energy (dynamic + leakage, excluding DRAM).
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.leakage_j
    }

    /// Energy-delay-squared product (J.s^2).
    pub fn ed2(&self, seconds: f64) -> f64 {
        self.total_j() * seconds * seconds
    }
}

/// The GPU energy model.
#[derive(Debug, Clone)]
pub struct GpuEnergyModel {
    assignment: DeviceAssignment,
}

impl GpuEnergyModel {
    /// Builds the model from a device assignment.
    pub fn new(assignment: DeviceAssignment) -> Self {
        GpuEnergyModel { assignment }
    }

    /// Computes the energy of one GPU run.
    pub fn energy(&self, act: &GpuActivity) -> GpuEnergy {
        let a = &self.assignment;
        let b = &GPU_BASELINE;
        let mut dynamic = 0.0;
        dynamic += act.wavefront_insts as f64
            * b.fetch_schedule_pj
            * a.gpu_dynamic_factor(GpuUnit::FetchSchedule);
        dynamic +=
            act.thread_fma_ops as f64 * b.simd_fma_pj * a.gpu_dynamic_factor(GpuUnit::SimdFma);
        dynamic += act.vector_rf_accesses as f64
            * b.vector_rf_pj
            * a.gpu_dynamic_factor(GpuUnit::VectorRf);
        dynamic +=
            act.rf_cache_accesses as f64 * b.rf_cache_pj * a.gpu_dynamic_factor(GpuUnit::RfCache);
        // The fast partition of a partitioned RF is CMOS by construction
        // (Section VIII) but also a 16x smaller array than the 256-entry
        // vector RF: per-access energy scales with the activated array
        // (CACTI-lite's way/wire terms), modeled as 0.3x the full RF.
        dynamic += act.rf_fast_accesses as f64 * 0.3 * b.vector_rf_pj * a.voltages.cmos_dynamic;
        dynamic += act.lds_accesses as f64 * b.lds_pj * a.gpu_dynamic_factor(GpuUnit::Lds);
        dynamic += act.mem_insts as f64 * b.mem_pipe_pj * a.gpu_dynamic_factor(GpuUnit::MemPipe);

        let mut leak_mw = 0.0;
        for u in GpuUnit::ALL {
            leak_mw += gpu_leakage_mw(u) * a.gpu_leakage_factor(u);
        }
        leak_mw *= act.compute_units as f64;

        GpuEnergy {
            dynamic_j: dynamic * PJ,
            leakage_j: leak_mw * MW * act.seconds,
            dram_j: act.dram_accesses as f64 * b.dram_pj * PJ,
        }
    }
}

/// Validates an [`EnergyBreakdown`]: every component is finite and
/// non-negative, and the dynamic/leakage split sums to the chip total.
pub fn validate_energy_breakdown(e: &EnergyBreakdown, checker: &mut hetsim_check::Checker) {
    checker.scoped("energy", |c| {
        for (name, v) in [
            ("core_dynamic_j", e.core_dynamic_j),
            ("core_leakage_j", e.core_leakage_j),
            ("l2_dynamic_j", e.l2_dynamic_j),
            ("l2_leakage_j", e.l2_leakage_j),
            ("l3_dynamic_j", e.l3_dynamic_j),
            ("l3_leakage_j", e.l3_leakage_j),
            ("dram_j", e.dram_j),
        ] {
            c.ge_f64("power.component_nonnegative", (name, v), 0.0);
        }
        c.close_f64(
            "power.split_sums_to_total",
            ("dynamic_j + leakage_j", e.dynamic_j() + e.leakage_j()),
            ("total_j", e.total_j()),
            1e-12,
        );
    });
}

/// Validates the energy of an *idle* core: leakage may accumulate, but
/// with no events there is nothing to switch, so every dynamic component
/// must be exactly zero.
pub fn validate_idle_breakdown(e: &EnergyBreakdown, checker: &mut hetsim_check::Checker) {
    validate_energy_breakdown(e, checker);
    checker.scoped("energy", |c| {
        c.close_f64(
            "power.idle_no_switching",
            ("idle dynamic_j", e.dynamic_j()),
            ("0", 0.0),
            0.0,
        );
    });
}

/// Validates a [`GpuEnergy`]: finite, non-negative components.
pub fn validate_gpu_energy(e: &GpuEnergy, checker: &mut hetsim_check::Checker) {
    checker.scoped("gpu_energy", |c| {
        for (name, v) in [
            ("dynamic_j", e.dynamic_j),
            ("leakage_j", e.leakage_j),
            ("dram_j", e.dram_j),
        ] {
            c.ge_f64("power.component_nonnegative", (name, v), 0.0);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_stats() -> (CoreStats, MemStats) {
        // A 100k-instruction, IPC ~2.5 run with a SPLASH-2-like mix (the
        // calibrated workloads run in that IPC band on the 4-wide core).
        let stats = CoreStats {
            cycles: 40_000,
            committed: 100_000,
            dispatched: 100_000,
            fetch_groups: 30_000,
            issues: 100_000,
            alu_fast_ops: 0,
            alu_slow_ops: 25_000,
            int_mul_ops: 2_000,
            int_div_ops: 200,
            fp_add_ops: 15_000,
            fp_mul_ops: 17_000,
            fp_div_ops: 800,
            loads: 21_000,
            stores: 9_000,
            branches: 10_000,
            mispredicts: 500,
            int_rf_reads: 70_000,
            int_rf_writes: 50_000,
            fp_rf_reads: 45_000,
            fp_rf_writes: 33_000,
            ..CoreStats::default()
        };
        let mut mem = MemStats::default();
        mem.il1.accesses = 30_000;
        mem.dl1_slow.accesses = 30_000;
        mem.dl1_slow.hits = 27_000;
        mem.l2.accesses = 3_000;
        mem.l2.fills = 1_500;
        mem.l3.accesses = 1_500;
        mem.l3.fills = 600;
        mem.dram_accesses = 600;
        (stats, mem)
    }

    #[test]
    fn validators_accept_real_energies_and_reject_corruption() {
        let (stats, mem) = typical_stats();
        let seconds = stats.cycles as f64 / 2.0e9;
        let model = CpuEnergyModel::new(DeviceAssignment::all_cmos());
        let e = model.energy(&stats, &mem, seconds);
        let mut checker = hetsim_check::Checker::new();
        validate_energy_breakdown(&e, &mut checker);
        validate_idle_breakdown(&model.idle_energy(seconds), &mut checker);
        assert!(checker.is_clean(), "{:?}", checker.violations());

        let mut bad = e;
        bad.l2_leakage_j = -1.0e-6;
        let mut checker = hetsim_check::Checker::new();
        validate_energy_breakdown(&bad, &mut checker);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.invariant == "power.component_nonnegative"
                && v.actual.contains("l2_leakage_j")));
    }

    #[test]
    fn basecmos_split_is_roughly_60_40() {
        // Calibration target #1 (see mcpat.rs): the dynamic share on a
        // typical run sits near 60%, which is what makes the all-TFET
        // design land at the paper's -76% energy.
        let (stats, mem) = typical_stats();
        let seconds = stats.cycles as f64 / 2.0e9;
        let e = CpuEnergyModel::new(DeviceAssignment::all_cmos()).energy(&stats, &mem, seconds);
        let dyn_share = e.dynamic_j() / e.total_j();
        assert!((0.5..0.7).contains(&dyn_share), "dynamic share {dyn_share}");
    }

    #[test]
    fn all_tfet_saves_about_three_quarters() {
        let (stats, mem) = typical_stats();
        // BaseTFET runs at half clock: same cycles-ish, double seconds.
        let base_s = stats.cycles as f64 / 2.0e9;
        let cmos = CpuEnergyModel::new(DeviceAssignment::all_cmos()).energy(&stats, &mem, base_s);
        let tfet =
            CpuEnergyModel::new(DeviceAssignment::all_tfet()).energy(&stats, &mem, 2.0 * base_s);
        let ratio = tfet.total_j() / cmos.total_j();
        assert!(
            (0.18..0.30).contains(&ratio),
            "BaseTFET energy ratio {ratio}"
        );
    }

    #[test]
    fn hetcore_assignment_saves_a_third_or_more() {
        let (stats, mem) = typical_stats();
        let base_s = stats.cycles as f64 / 2.0e9;
        let cmos = CpuEnergyModel::new(DeviceAssignment::all_cmos()).energy(&stats, &mem, base_s);
        // BaseHet is ~40% slower.
        let het = CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false)).energy(
            &stats,
            &mem,
            1.4 * base_s,
        );
        let ratio = het.total_j() / cmos.total_j();
        assert!((0.5..0.75).contains(&ratio), "BaseHet energy ratio {ratio}");
    }

    #[test]
    fn idle_energy_is_pure_leakage() {
        let m = CpuEnergyModel::new(DeviceAssignment::all_cmos());
        let e = m.idle_energy(1.0e-3);
        assert_eq!(e.dynamic_j(), 0.0);
        assert!(e.leakage_j() > 0.0);
        assert_eq!(e.dram_j, 0.0);
    }

    #[test]
    fn leakage_scales_with_time() {
        let m = CpuEnergyModel::new(DeviceAssignment::all_cmos());
        let e1 = m.idle_energy(1.0e-3);
        let e2 = m.idle_energy(2.0e-3);
        assert!((e2.leakage_j() / e1.leakage_j() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_rob_and_fp_rf_leak_more() {
        let base = CpuEnergyModel::new(DeviceAssignment::all_cmos()).idle_energy(1.0);
        let enh = CpuEnergyModel::new(DeviceAssignment::all_cmos())
            .with_structure(192, 128)
            .idle_energy(1.0);
        assert!(enh.core_leakage_j > base.core_leakage_j);
    }

    #[test]
    fn dual_speed_alu_keeps_quarter_cmos_leakage() {
        let tfet_model = CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false));
        let dual_model =
            CpuEnergyModel::new(DeviceAssignment::hetcore_cpu(false)).with_dual_speed_alu();
        // Dual-speed leaks more than all-TFET ALUs, less than all-CMOS.
        let t = tfet_model.idle_energy(1.0).core_leakage_j;
        let d = dual_model.idle_energy(1.0).core_leakage_j;
        let c = CpuEnergyModel::new(DeviceAssignment::all_cmos())
            .idle_energy(1.0)
            .core_leakage_j;
        assert!(t < d && d < c);
    }

    #[test]
    fn ed2_weights_delay_quadratically() {
        let (stats, mem) = typical_stats();
        let m = CpuEnergyModel::new(DeviceAssignment::all_cmos());
        let e = m.energy(&stats, &mem, 1.0e-3);
        assert!((e.ed2(2.0e-3) / e.ed(2.0e-3) - 2.0e-3).abs() < 1e-15);
    }

    #[test]
    fn gpu_all_tfet_saves_about_three_quarters() {
        let act = GpuActivity {
            wavefront_insts: 100_000,
            thread_fma_ops: 3_000_000,
            vector_rf_accesses: 9_000_000,
            lds_accesses: 500_000,
            mem_insts: 15_000,
            dram_accesses: 8_000,
            compute_units: 8,
            seconds: 1.0e-4,
            ..GpuActivity::default()
        };
        let cmos = GpuEnergyModel::new(DeviceAssignment::all_cmos()).energy(&act);
        let mut slow = act;
        slow.seconds *= 2.0;
        let tfet = GpuEnergyModel::new(DeviceAssignment::all_tfet()).energy(&slow);
        let ratio = tfet.total_j() / cmos.total_j();
        assert!((0.15..0.32).contains(&ratio), "GPU BaseTFET ratio {ratio}");
    }
}
