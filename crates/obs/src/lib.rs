//! # hetsim-obs: span-level run tracing
//!
//! The campaign engine knows *what* every HetCore design computed (the
//! Fig 7/8/14 counter sets), but not *where wall-clock goes* inside a
//! campaign. This crate adds that visibility without perturbing any
//! result:
//!
//! * a [`Clock`] abstraction ([`MonotonicClock`] for real runs,
//!   [`ManualClock`] for deterministic tests) so callers never scatter
//!   `Instant::now()`;
//! * a [`TraceRecorder`] collecting [`TraceEvent`]s — completed spans
//!   and instants — from any thread, with per-thread track assignment;
//! * a line-oriented JSONL log ([`TraceRecorder::to_jsonl`] /
//!   [`parse_jsonl`]) written by `repro --trace-out`;
//! * a Chrome trace-event exporter ([`chrome_trace`]) whose output
//!   loads in Perfetto / `chrome://tracing`;
//! * structural trace validation ([`validate_events`]) used by
//!   `repro check --trace-in`: spans must end at or after they start,
//!   spans on one track must nest properly, and every `job-finished`
//!   instant must have a matching `cache-lookup` span.
//!
//! Tracing is strictly observational: recording is off unless a
//! recorder is attached, and even then only stderr/side files are
//! touched — headline stdout stays byte-identical.

#![warn(missing_docs)]

mod chrome;
mod clock;
pub mod profile;
mod recorder;
mod stitch;
mod validate;

pub use chrome::chrome_trace;
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use profile::{CycleProfile, ProfileRow, PROFILE_SCHEMA};
pub use recorder::{ArgValue, EventKind, SpanGuard, TraceEvent, TraceRecorder};
pub use stitch::stitch_traces;
pub use validate::{parse_jsonl, validate_events};
