//! Combining trace logs from multiple processes into one timeline.
//!
//! A sharded run produces one JSONL trace per worker. Each worker
//! numbers its tracks independently (track 0 is its main thread), so
//! naive concatenation would interleave unrelated threads on the same
//! lane. [`stitch_traces`] rebases every input's track ids into a
//! disjoint range — input 0 keeps its ids, each later input starts
//! right after the previous input's highest lane — and concatenates
//! the events in input order. Timestamps are left untouched: workers
//! of one run share a wall clock closely enough for side-by-side
//! inspection, and rewriting times would falsify the one thing the
//! trace exists to show.

use crate::recorder::TraceEvent;

/// Merges per-process event logs into one, giving each input a
/// disjoint track range (in input order) so no two processes share a
/// lane. Returns the rebased events concatenated in input order, each
/// input's internal order preserved.
pub fn stitch_traces(inputs: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut out = Vec::with_capacity(inputs.iter().map(Vec::len).sum());
    let mut base = 0u64;
    for events in inputs {
        let top = events.iter().map(|e| e.track).max();
        for mut event in events {
            event.track += base;
            out.push(event);
        }
        if let Some(top) = top {
            base += top + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;

    fn ev(name: &str, track: u64, at_us: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "test".into(),
            track,
            kind: EventKind::Instant { at_us },
            args: Vec::new(),
        }
    }

    #[test]
    fn single_input_is_untouched() {
        let events = vec![ev("a", 0, 1), ev("b", 3, 2)];
        let stitched = stitch_traces(vec![events.clone()]);
        assert_eq!(stitched, events);
    }

    #[test]
    fn later_inputs_get_disjoint_track_ranges() {
        let a = vec![ev("a0", 0, 1), ev("a1", 2, 2)];
        let b = vec![ev("b0", 0, 3), ev("b1", 1, 4)];
        let c = vec![ev("c0", 0, 5)];
        let stitched = stitch_traces(vec![a, b, c]);
        let tracks: Vec<(String, u64)> =
            stitched.iter().map(|e| (e.name.clone(), e.track)).collect();
        // a occupies 0..=2, so b rebases to 3.., c after b's top (4).
        assert_eq!(
            tracks,
            vec![
                ("a0".into(), 0),
                ("a1".into(), 2),
                ("b0".into(), 3),
                ("b1".into(), 4),
                ("c0".into(), 5),
            ]
        );
    }

    #[test]
    fn empty_inputs_consume_no_track_space() {
        let a = vec![ev("a", 1, 1)];
        let c = vec![ev("c", 0, 2)];
        let stitched = stitch_traces(vec![a, Vec::new(), c]);
        assert_eq!(stitched[0].track, 1);
        assert_eq!(stitched[1].track, 2, "empty middle input shifts nothing");
    }

    #[test]
    fn event_order_within_an_input_is_preserved() {
        let a = vec![ev("x", 0, 9), ev("y", 0, 3)];
        let stitched = stitch_traces(vec![a]);
        assert_eq!(stitched[0].name, "x");
        assert_eq!(stitched[1].name, "y", "no re-sorting by timestamp");
    }
}
