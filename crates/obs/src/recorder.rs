//! The trace recorder: spans and instants collected from any thread.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;

/// A typed span/instant annotation value.
///
/// Args used to be stringly (`Vec<(String, String)>`); numeric values
/// — job indices, queue waits, batch totals — now serialize as JSON
/// numbers, which shrinks the JSONL log and lets consumers read them
/// without parsing. [`ArgValue::render`] gives the canonical string
/// form (`U64(3)` and a legacy `Str("3")` render identically), which
/// is what structural validation matches on, so traces recorded by
/// older builds keep validating.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (indices, counts, microsecond waits).
    U64(u64),
    /// A float (rates, seconds).
    F64(f64),
    /// Free-form text (labels, provenance tags).
    Str(String),
}

impl ArgValue {
    /// The canonical string rendering: integers and text render as
    /// themselves, floats through Rust's shortest-roundtrip `Display`.
    pub fn render(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => v.to_string(),
            ArgValue::Str(s) => s.clone(),
        }
    }

    /// The value as `u64` when it is one (never parses strings).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` when it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl Serialize for ArgValue {
    fn to_value(&self) -> Value {
        match self {
            ArgValue::U64(v) => Value::UInt(*v),
            ArgValue::F64(v) => Value::Float(*v),
            ArgValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl Deserialize for ArgValue {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::UInt(n) => Ok(ArgValue::U64(*n)),
            Value::Int(n) if *n >= 0 => Ok(ArgValue::U64(*n as u64)),
            Value::Int(n) => Ok(ArgValue::F64(*n as f64)),
            Value::Float(f) => Ok(ArgValue::F64(*f)),
            Value::Str(s) => Ok(ArgValue::Str(s.clone())),
            other => Err(serde::Error::custom(format!(
                "trace event arg is not a number or string: {other:?}"
            ))),
        }
    }
}

/// The temporal shape of one [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A closed interval of work. `end_us >= start_us` by
    /// construction when recorded through [`TraceRecorder`]; trace
    /// validation re-checks it on files of unknown provenance.
    Span {
        /// Start timestamp, clock microseconds.
        start_us: u64,
        /// End timestamp, clock microseconds.
        end_us: u64,
    },
    /// A point event (e.g. `job-finished`).
    Instant {
        /// Timestamp, clock microseconds.
        at_us: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`simulate`, `cache-lookup`, `job-finished`, …).
    pub name: String,
    /// Coarse category (`campaign`, `batch`, `job`) — becomes the
    /// Chrome trace `cat` field, which Perfetto can filter on.
    pub cat: String,
    /// The track (thread lane) the event belongs to. Track 0 is the
    /// first thread that recorded; worker threads get 1, 2, … in
    /// first-use order.
    pub track: u64,
    /// Span or instant, with timestamps.
    pub kind: EventKind,
    /// Free-form `(key, value)` annotations (job label, provenance,
    /// queue wait). Values are typed ([`ArgValue`]): numbers serialize
    /// as JSON numbers, text as strings — the JSONL stays schema-free.
    pub args: Vec<(String, ArgValue)>,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::with_capacity(7);
        match self.kind {
            EventKind::Span { start_us, end_us } => {
                fields.push(("kind".into(), Value::Str("span".into())));
                fields.push(("name".into(), Value::Str(self.name.clone())));
                fields.push(("cat".into(), Value::Str(self.cat.clone())));
                fields.push(("track".into(), Value::UInt(self.track)));
                fields.push(("start_us".into(), Value::UInt(start_us)));
                fields.push(("end_us".into(), Value::UInt(end_us)));
            }
            EventKind::Instant { at_us } => {
                fields.push(("kind".into(), Value::Str("instant".into())));
                fields.push(("name".into(), Value::Str(self.name.clone())));
                fields.push(("cat".into(), Value::Str(self.cat.clone())));
                fields.push(("track".into(), Value::UInt(self.track)));
                fields.push(("at_us".into(), Value::UInt(at_us)));
            }
        }
        fields.push((
            "args".into(),
            Value::Object(
                self.args
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect(),
            ),
        ));
        Value::Object(fields)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("trace event has no `{name}` field")))
        };
        let str_field = |name: &str| {
            field(name)?.as_str().map(str::to_string).ok_or_else(|| {
                serde::Error::custom(format!("trace event `{name}` is not a string"))
            })
        };
        let u64_field = |name: &str| {
            field(name)?.as_u64().ok_or_else(|| {
                serde::Error::custom(format!("trace event `{name}` is not an unsigned integer"))
            })
        };
        let kind = match str_field("kind")?.as_str() {
            "span" => EventKind::Span {
                start_us: u64_field("start_us")?,
                end_us: u64_field("end_us")?,
            },
            "instant" => EventKind::Instant {
                at_us: u64_field("at_us")?,
            },
            other => {
                return Err(serde::Error::custom(format!(
                    "unknown trace event kind '{other}'"
                )))
            }
        };
        let args = match v.get("args") {
            None | Some(Value::Null) => Vec::new(),
            Some(args) => args
                .as_object()
                .ok_or_else(|| serde::Error::custom("trace event `args` is not an object"))?
                .iter()
                .map(|(k, val)| {
                    ArgValue::from_value(val)
                        .map(|a| (k.clone(), a))
                        .map_err(|_| {
                            serde::Error::custom(format!(
                                "trace event arg `{k}` is not a number or string"
                            ))
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(TraceEvent {
            name: str_field("name")?,
            cat: str_field("cat")?,
            track: u64_field("track")?,
            kind,
            args,
        })
    }
}

/// Collects [`TraceEvent`]s from any thread against one injected
/// [`Clock`].
///
/// Threads are mapped to stable *tracks* on first use, so a trace
/// viewer shows one lane per worker. Recording is lock-per-event; the
/// runner emits a handful of events per job, which is far below the
/// mutex's noise floor.
pub struct TraceRecorder {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<TraceEvent>>,
    tracks: Mutex<HashMap<ThreadId, u64>>,
}

impl TraceRecorder {
    /// A recorder reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        TraceRecorder {
            clock,
            events: Mutex::new(Vec::new()),
            tracks: Mutex::new(HashMap::new()),
        }
    }

    /// The recorder's current time, clock microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The clock this recorder reads, for callers that must stamp
    /// other measurements on the same timeline.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    /// The calling thread's track, assigned on first use (0, 1, 2, …).
    pub fn current_track(&self) -> u64 {
        let mut tracks = self.tracks.lock().expect("track lock");
        let next = tracks.len() as u64;
        *tracks.entry(std::thread::current().id()).or_insert(next)
    }

    /// Opens a span starting now; the returned guard records it on
    /// drop, on the calling thread's track.
    pub fn span(&self, name: impl Into<String>, cat: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name: name.into(),
            cat: cat.into(),
            start_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Records a completed span with explicit timestamps (clamped so
    /// `end_us >= start_us` always holds for recorder-produced traces).
    pub fn record_span(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        start_us: u64,
        end_us: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            track: self.current_track(),
            kind: EventKind::Span {
                start_us,
                end_us: end_us.max(start_us),
            },
            args,
        });
    }

    /// Records an instant event stamped now.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        args: Vec<(String, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            track: self.current_track(),
            kind: EventKind::Instant {
                at_us: self.now_us(),
            },
            args,
        });
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().expect("event lock").push(event);
    }

    /// A snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("event lock").clone()
    }

    /// The JSONL rendering: one compact JSON object per line, in
    /// recording order (spans appear at their *end* time). This is the
    /// `repro --trace-out` file format; parse it back with
    /// [`crate::parse_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events.lock().expect("event lock").iter() {
            out.push_str(&serde_json::to_string(event).expect("value trees always serialize"));
            out.push('\n');
        }
        out
    }
}

/// An open span; records itself on drop. Annotate with
/// [`SpanGuard::arg`] before it closes.
pub struct SpanGuard<'a> {
    recorder: &'a TraceRecorder,
    name: String,
    cat: String,
    start_us: u64,
    args: Vec<(String, ArgValue)>,
}

impl SpanGuard<'_> {
    /// Attaches one `(key, value)` annotation; the value may be a
    /// string, `u64`/`usize`/`u32` or `f64` (see [`ArgValue`]).
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.record_span(
            std::mem::take(&mut self.name),
            std::mem::take(&mut self.cat),
            self.start_us,
            self.recorder.now_us(),
            std::mem::take(&mut self.args),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, TraceRecorder) {
        let clock = Arc::new(ManualClock::new());
        let recorder = TraceRecorder::new(clock.clone());
        (clock, recorder)
    }

    #[test]
    fn span_guard_records_start_and_end_from_the_injected_clock() {
        let (clock, recorder) = manual();
        clock.advance(10);
        {
            let _span = recorder
                .span("simulate", "job")
                .arg("job", "cpu/lu/AdvHetx4");
            clock.advance(25);
        }
        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "simulate");
        assert_eq!(
            events[0].kind,
            EventKind::Span {
                start_us: 10,
                end_us: 35
            }
        );
        assert_eq!(
            events[0].args,
            [("job".to_string(), ArgValue::Str("cpu/lu/AdvHetx4".into()))]
        );
    }

    #[test]
    fn typed_args_serialize_as_json_numbers() {
        let (_clock, recorder) = manual();
        {
            let _span = recorder
                .span("simulate", "job")
                .arg("index", 3usize)
                .arg("queue_us", 250u64)
                .arg("rate", 1.5f64)
                .arg("job", "cpu/lu/AdvHetx4");
        }
        let event = &recorder.events()[0];
        let args = event.to_value();
        let args = args.get("args").expect("args object");
        assert_eq!(args.get("index").and_then(Value::as_u64), Some(3));
        assert_eq!(args.get("queue_us").and_then(Value::as_u64), Some(250));
        assert_eq!(args.get("rate").and_then(Value::as_f64), Some(1.5));
        assert_eq!(
            args.get("job").and_then(Value::as_str),
            Some("cpu/lu/AdvHetx4")
        );
        // The canonical rendering is the same whether the arg was
        // recorded typed or stringly — legacy traces keep matching.
        assert_eq!(
            ArgValue::U64(3).render(),
            ArgValue::Str("3".into()).render()
        );
    }

    #[test]
    fn instants_stamp_the_current_time() {
        let (clock, recorder) = manual();
        clock.advance(7);
        recorder.instant("job-finished", "job", vec![]);
        match recorder.events()[0].kind {
            EventKind::Instant { at_us } => assert_eq!(at_us, 7),
            ref other => panic!("expected instant, got {other:?}"),
        }
    }

    #[test]
    fn tracks_are_stable_per_thread_and_distinct_across_threads() {
        let (_clock, recorder) = manual();
        let main_track = recorder.current_track();
        assert_eq!(main_track, recorder.current_track(), "stable on re-ask");
        let other =
            std::thread::scope(|s| s.spawn(|| recorder.current_track()).join().expect("joins"));
        assert_ne!(main_track, other);
    }

    #[test]
    fn explicit_spans_clamp_inverted_timestamps() {
        let (_clock, recorder) = manual();
        recorder.record_span("s", "c", 100, 40, vec![]);
        match recorder.events()[0].kind {
            EventKind::Span { start_us, end_us } => {
                assert_eq!((start_us, end_us), (100, 100));
            }
            ref other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn events_round_trip_through_serde() {
        let (clock, recorder) = manual();
        clock.advance(3);
        recorder.record_span(
            "cache-write",
            "job",
            1,
            3,
            vec![("index".into(), "4".into())],
        );
        recorder.instant(
            "job-finished",
            "job",
            vec![("provenance".into(), "ran".into())],
        );
        for event in recorder.events() {
            let back = TraceEvent::from_value(&event.to_value()).expect("round trip");
            assert_eq!(back, event);
        }
    }
}
