//! The `hetsim-profile-v1` cycle-attribution document.
//!
//! The simulators charge every cycle of every core/CU to one top-down
//! [`CycleClass`]; this module is where those per-unit counts become an
//! exportable artifact:
//!
//! * [`CycleProfile`] — the document itself: rows keyed by
//!   `(design, unit)`, merged deterministically so per-shard fragments
//!   combine like [`crate::stitch_traces`] combines trace logs;
//! * [`CycleProfile::folded`] — folded-stack text
//!   (`design;unit;class count`), directly consumable by standard
//!   flamegraph tooling (`flamegraph.pl`, inferno, speedscope);
//! * [`CycleProfile::counter_track_doc`] — Perfetto counter tracks
//!   (`"ph": "C"`) in the same Chrome trace-event document shape as
//!   [`crate::chrome_trace`], one track per design with one counter
//!   series per class;
//! * [`collector`] — a process-wide accumulation point the experiment
//!   layer publishes rows into while profiling is enabled.

use std::sync::Mutex;

use hetsim_stats::attribution::ClassCounts;
use hetsim_stats::Histogram;
use serde::value::Value;
use serde::{Deserialize, Error, Serialize};

pub use hetsim_stats::attribution::CycleClass;

/// Schema tag of the profile document.
pub const PROFILE_SCHEMA: &str = "hetsim-profile-v1";

/// One unit's attribution inside a [`CycleProfile`]: the design it ran
/// under, the unit name (`core0`, `cu3`, ...), its class totals, and
/// any named histograms (occupancy, latency distributions) the
/// simulator recorded for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Design column name (e.g. `AdvHet`).
    pub design: String,
    /// Unit within the design (`core0`, `cu3`, ...).
    pub unit: String,
    /// Cycles per top-down class; sums to [`ProfileRow::cycles`].
    pub classes: ClassCounts,
    /// Total attributed cycles for this unit.
    pub cycles: u64,
    /// Named histograms (e.g. `rob`, `iq`, `lsq`, `residency`,
    /// `mem_hit_latency`), kept sorted by name; merged name-wise.
    pub histograms: Vec<(String, Histogram)>,
}

impl ProfileRow {
    /// A row with no cycles and no histograms.
    pub fn new(design: impl Into<String>, unit: impl Into<String>) -> Self {
        ProfileRow {
            design: design.into(),
            unit: unit.into(),
            classes: ClassCounts::new(),
            cycles: 0,
            histograms: Vec::new(),
        }
    }

    /// Adds a named histogram (merging if the name already exists),
    /// skipping empty histograms so profiling-off runs stay lean.
    pub fn add_histogram(&mut self, name: &str, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        match self
            .histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.histograms[i].1.merge(h),
            Err(i) => self.histograms.insert(i, (name.to_string(), *h)),
        }
    }

    /// Folds another row for the same `(design, unit)` key in.
    fn merge(&mut self, other: &ProfileRow) {
        self.classes.merge(&other.classes);
        self.cycles = self.cycles.saturating_add(other.cycles);
        for (name, h) in &other.histograms {
            self.add_histogram(name, h);
        }
    }
}

impl Serialize for ProfileRow {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("design".into(), Value::Str(self.design.clone())),
            ("unit".into(), Value::Str(self.unit.clone())),
            ("cycles".into(), Value::UInt(self.cycles)),
            ("classes".into(), self.classes.to_value()),
            (
                "histograms".into(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for ProfileRow {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| Error::custom(format!("ProfileRow has no string `{name}`")))
        };
        let mut histograms = Vec::new();
        if let Some(hs) = v.get("histograms").and_then(Value::as_object) {
            for (name, hv) in hs {
                histograms.push((name.clone(), Histogram::from_value(hv)?));
            }
        }
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(ProfileRow {
            design: str_field("design")?,
            unit: str_field("unit")?,
            cycles: v
                .get("cycles")
                .and_then(Value::as_u64)
                .ok_or_else(|| Error::custom("ProfileRow has no `cycles`"))?,
            classes: ClassCounts::from_value(
                v.get("classes")
                    .ok_or_else(|| Error::custom("ProfileRow has no `classes`"))?,
            )?,
            histograms,
        })
    }
}

/// The cycle-attribution document: per-`(design, unit)` rows, kept
/// sorted by key so serialization and shard merges are deterministic
/// regardless of completion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleProfile {
    rows: Vec<ProfileRow>,
}

impl CycleProfile {
    /// An empty profile.
    pub fn new() -> Self {
        CycleProfile::default()
    }

    /// The rows, sorted by `(design, unit)`.
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    /// `true` when no row has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Folds `row` in: merged into the existing `(design, unit)` row if
    /// one exists, inserted in sorted position otherwise.
    pub fn merge_row(&mut self, row: ProfileRow) {
        let key = (row.design.clone(), row.unit.clone());
        match self
            .rows
            .binary_search_by(|r| (r.design.as_str(), r.unit.as_str()).cmp(&(&key.0, &key.1)))
        {
            Ok(i) => self.rows[i].merge(&row),
            Err(i) => self.rows.insert(i, row),
        }
    }

    /// Folds a whole fragment in — the profile analogue of
    /// [`crate::stitch_traces`] for per-shard outputs.
    pub fn merge(&mut self, other: &CycleProfile) {
        for row in &other.rows {
            self.merge_row(row.clone());
        }
    }

    /// Folded-stack export: one `design;unit;class count` line per
    /// nonzero class, consumable by standard flamegraph tools.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for (class, cycles) in row.classes.iter() {
                if cycles > 0 {
                    out.push_str(&format!(
                        "{};{};{} {}\n",
                        row.design,
                        row.unit,
                        class.name(),
                        cycles
                    ));
                }
            }
        }
        out
    }

    /// Perfetto counter-track export in the Chrome trace-event document
    /// shape of [`crate::chrome_trace`]: one lane (`tid`) per design
    /// with a `thread_name` metadata record, and per unit one `"C"`
    /// (counter) event at `ts = unit index` whose args carry every
    /// class's cycle count — Perfetto renders each design as a stacked
    /// multi-series counter track over its units.
    pub fn counter_track_doc(&self) -> Value {
        let mut designs: Vec<&str> = self.rows.iter().map(|r| r.design.as_str()).collect();
        designs.dedup(); // rows are sorted by design already
        let mut events: Vec<Value> = Vec::new();
        for (tid, design) in designs.iter().enumerate() {
            events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(0)),
                ("tid".into(), Value::UInt(tid as u64)),
                (
                    "args".into(),
                    Value::Object(vec![(
                        "name".into(),
                        Value::Str(format!("{design} cycle classes")),
                    )]),
                ),
            ]));
            for (ts, row) in self.rows.iter().filter(|r| r.design == *design).enumerate() {
                events.push(Value::Object(vec![
                    ("name".into(), Value::Str(format!("{design} cycles"))),
                    ("cat".into(), Value::Str("profile".into())),
                    ("ph".into(), Value::Str("C".into())),
                    ("ts".into(), Value::UInt(ts as u64)),
                    ("pid".into(), Value::UInt(0)),
                    ("tid".into(), Value::UInt(tid as u64)),
                    ("args".into(), row.classes.to_value()),
                ]));
            }
        }
        Value::Object(vec![
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            ("traceEvents".into(), Value::Array(events)),
        ])
    }
}

impl Serialize for CycleProfile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::Str(PROFILE_SCHEMA.into())),
            (
                "rows".into(),
                Value::Array(self.rows.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl Deserialize for CycleProfile {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.get("schema").and_then(Value::as_str) {
            Some(PROFILE_SCHEMA) => {}
            other => {
                return Err(Error::custom(format!(
                    "expected schema {PROFILE_SCHEMA:?}, found {other:?}"
                )))
            }
        }
        let rows = v
            .get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::custom("CycleProfile has no `rows`"))?;
        let mut profile = CycleProfile::new();
        for row in rows {
            profile.merge_row(ProfileRow::from_value(row)?);
        }
        Ok(profile)
    }
}

/// Process-wide accumulation point for attribution rows.
///
/// The experiment layer publishes one [`ProfileRow`] per simulated unit
/// while profiling is enabled; the CLI drains the accumulated document
/// once at the end of the run. Recording is strictly observational —
/// nothing here feeds back into simulation or headline output.
pub mod collector {
    use super::{CycleProfile, Mutex, ProfileRow};

    static COLLECTOR: Mutex<Option<CycleProfile>> = Mutex::new(None);

    /// Publishes one unit's attribution row.
    pub fn record(row: ProfileRow) {
        let mut guard = COLLECTOR.lock().expect("profile collector poisoned");
        guard.get_or_insert_with(CycleProfile::new).merge_row(row);
    }

    /// Drains the accumulated profile, leaving the collector empty.
    pub fn take() -> CycleProfile {
        COLLECTOR
            .lock()
            .expect("profile collector poisoned")
            .take()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(design: &str, unit: &str, retire: u64, mem: u64) -> ProfileRow {
        let mut r = ProfileRow::new(design, unit);
        r.classes.charge(CycleClass::Retire, retire);
        r.classes.charge(CycleClass::MemLatency, mem);
        r.cycles = retire + mem;
        r
    }

    #[test]
    fn rows_merge_by_key_and_stay_sorted() {
        let mut p = CycleProfile::new();
        p.merge_row(row("Conv", "core0", 10, 2));
        p.merge_row(row("AdvHet", "core1", 5, 0));
        p.merge_row(row("Conv", "core0", 1, 1));
        let keys: Vec<(&str, &str)> = p
            .rows()
            .iter()
            .map(|r| (r.design.as_str(), r.unit.as_str()))
            .collect();
        assert_eq!(keys, vec![("AdvHet", "core1"), ("Conv", "core0")]);
        assert_eq!(p.rows()[1].cycles, 14, "same-key rows merged");
        assert_eq!(p.rows()[1].classes.get(CycleClass::Retire), 11);
    }

    #[test]
    fn fragment_merge_equals_row_by_row() {
        let mut a = CycleProfile::new();
        a.merge_row(row("Conv", "core0", 3, 4));
        let mut b = CycleProfile::new();
        b.merge_row(row("Conv", "core0", 1, 0));
        b.merge_row(row("Conv", "cu0", 9, 9));
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = CycleProfile::new();
        direct.merge_row(row("Conv", "core0", 3, 4));
        direct.merge_row(row("Conv", "core0", 1, 0));
        direct.merge_row(row("Conv", "cu0", 9, 9));
        assert_eq!(merged, direct);
    }

    #[test]
    fn folded_lines_carry_all_nonzero_classes() {
        let mut p = CycleProfile::new();
        p.merge_row(row("AdvHet", "core0", 7, 3));
        let folded = p.folded();
        assert!(folded.contains("AdvHet;core0;retire 7\n"));
        assert!(folded.contains("AdvHet;core0;mem-latency 3\n"));
        assert!(
            !folded.contains("frontend"),
            "zero classes are omitted: {folded}"
        );
        // Every line parses back: `stack count`.
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert_eq!(stack.split(';').count(), 3);
            count.parse::<u64>().expect("count is a number");
        }
    }

    #[test]
    fn counter_doc_has_one_lane_per_design() {
        let mut p = CycleProfile::new();
        p.merge_row(row("AdvHet", "core0", 1, 0));
        p.merge_row(row("AdvHet", "core1", 2, 0));
        p.merge_row(row("Conv", "core0", 3, 0));
        let doc = p.counter_track_doc();
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents");
        let counters: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        let metas = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .count();
        assert_eq!(metas, 2, "one thread_name per design");
        // AdvHet's two units land on the same tid at ts 0 and 1.
        assert_eq!(counters[0].get("tid"), counters[1].get("tid"));
        assert_eq!(
            counters[1].get("ts").and_then(Value::as_u64),
            Some(1),
            "units enumerate the counter x-axis"
        );
        assert_eq!(
            counters[0]
                .get("args")
                .and_then(|a| a.get("retire"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn document_serde_round_trips() {
        let mut p = CycleProfile::new();
        let mut r = row("AdvHet", "core0", 100, 20);
        let mut h = Histogram::new();
        h.record_n(32, 120);
        r.add_histogram("rob", &h);
        p.merge_row(r);
        let v = p.to_value();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(PROFILE_SCHEMA)
        );
        let back = CycleProfile::from_value(&v).expect("round trip");
        assert_eq!(back, p);
        assert!(CycleProfile::from_value(&Value::Object(vec![(
            "schema".into(),
            Value::Str("bogus".into())
        )]))
        .is_err());
    }

    #[test]
    fn collector_drains_to_empty() {
        collector::record(row("Conv", "coreX", 1, 0));
        collector::record(row("Conv", "coreX", 2, 0));
        let p = collector::take();
        assert_eq!(p.rows().len(), 1);
        assert_eq!(p.rows()[0].cycles, 3);
        assert!(collector::take().is_empty(), "take drains");
    }
}
