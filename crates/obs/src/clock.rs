//! Injected monotonic time.
//!
//! Every timing consumer (the runner's phase histograms, the trace
//! recorder, the live dashboard) reads time through a [`Clock`] rather
//! than calling `Instant::now()` directly, so tests can drive time by
//! hand and timing logic stays deterministic under test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
///
/// Implementations must be monotonic (time never goes backwards) and
/// cheap: the runner reads the clock a handful of times per job.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's epoch (its creation for
    /// [`MonotonicClock`], zero for a fresh [`ManualClock`]).
    fn now_us(&self) -> u64;
}

/// The real clock: wraps one [`Instant`] taken at construction, so all
/// timestamps of a run share a single epoch.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        // u64 micros cover ~584k years; the cast never truncates in
        // practice.
        self.origin.elapsed().as_micros() as u64
    }
}

/// A hand-driven clock for tests: starts at zero, only moves when
/// [`ManualClock::advance`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_us(), 0);
        clock.advance(250);
        assert_eq!(clock.now_us(), 250);
        clock.advance(50);
        assert_eq!(clock.now_us(), 300);
    }
}
