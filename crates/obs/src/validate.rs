//! Structural validation of trace files (`repro check --trace-in`).
//!
//! A trace produced by this crate satisfies three properties by
//! construction; a trace file of unknown provenance (hand-edited,
//! truncated, produced by a buggy build) is re-checked against them:
//!
//! 1. every span ends at or after it starts;
//! 2. spans on one track nest properly — two spans on the same track
//!    either contain one another or are disjoint (a partial overlap
//!    means the recorder interleaved open spans on one thread, which
//!    the guard API makes impossible);
//! 3. every `job-finished` instant has a matching `cache-lookup` span
//!    for the same job index (every job is looked up exactly once
//!    before it finishes), and every executed job (`provenance: ran`)
//!    additionally has a `simulate` span.

use serde::value::Value;
use serde::Deserialize;

use crate::recorder::{EventKind, TraceEvent};

/// Parses a JSONL trace file (one event object per line, as written by
/// `repro --trace-out`). Blank lines are ignored.
///
/// # Errors
///
/// Returns a message naming the 1-based line of the first malformed
/// entry.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
        let event = TraceEvent::from_value(&value).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// An event's arg by key, in canonical string form (see
/// [`crate::ArgValue::render`]): a typed `U64(3)` and a legacy
/// stringly `"3"` match identically, so traces recorded before args
/// were typed keep validating.
fn arg(event: &TraceEvent, key: &str) -> Option<String> {
    event
        .args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.render())
}

/// Checks the three structural trace properties, returning one message
/// per violation (empty means the trace is well-formed).
pub fn validate_events(events: &[TraceEvent]) -> Vec<String> {
    let mut violations = Vec::new();

    // ---- property 1: end >= start ----
    for event in events {
        if let EventKind::Span { start_us, end_us } = event.kind {
            if end_us < start_us {
                violations.push(format!(
                    "span `{}` on track {} ends before it starts ({end_us} < {start_us})",
                    event.name, event.track
                ));
            }
        }
    }

    // ---- property 2: proper nesting per track ----
    let mut tracks: Vec<u64> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for track in tracks {
        // Sort by start ascending, then end descending, so an
        // enclosing span precedes everything it contains; a running
        // stack of open intervals then catches partial overlaps.
        let mut spans: Vec<(&TraceEvent, u64, u64)> = events
            .iter()
            .filter(|e| e.track == track)
            .filter_map(|e| match e.kind {
                EventKind::Span { start_us, end_us } if end_us >= start_us => {
                    Some((e, start_us, end_us))
                }
                _ => None,
            })
            .collect();
        spans.sort_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)));
        let mut stack: Vec<(&TraceEvent, u64, u64)> = Vec::new();
        for (event, start, end) in spans {
            while let Some(&(_, _, open_end)) = stack.last() {
                if open_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open, _, open_end)) = stack.last() {
                if end > open_end {
                    violations.push(format!(
                        "span `{}` [{start}, {end}] on track {track} partially overlaps \
                         `{}` (ends at {open_end}): spans on one track must nest",
                        event.name, open.name
                    ));
                    continue; // don't push a malformed interval
                }
            }
            stack.push((event, start, end));
        }
    }

    // ---- property 3: every JobFinished has its spans ----
    let span_indices = |name: &str| -> Vec<String> {
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Span { .. }) && e.name == name)
            .filter_map(|e| arg(e, "index"))
            .collect()
    };
    let lookups = span_indices("cache-lookup");
    let simulates = span_indices("simulate");
    for event in events {
        if !matches!(event.kind, EventKind::Instant { .. }) || event.name != "job-finished" {
            continue;
        }
        let Some(index) = arg(event, "index") else {
            violations.push("`job-finished` instant has no `index` arg".to_string());
            continue;
        };
        if !lookups.contains(&index) {
            violations.push(format!(
                "job-finished #{index} has no matching `cache-lookup` span"
            ));
        }
        if arg(event, "provenance").as_deref() == Some("ran") && !simulates.contains(&index) {
            violations.push(format!(
                "job-finished #{index} was executed but has no `simulate` span"
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, track: u64, start_us: u64, end_us: u64, index: Option<&str>) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "job".into(),
            track,
            kind: EventKind::Span { start_us, end_us },
            args: index
                .map(|i| ("index".to_string(), i.into()))
                .into_iter()
                .collect(),
        }
    }

    fn finished(index: &str, provenance: &str, at_us: u64) -> TraceEvent {
        TraceEvent {
            name: "job-finished".into(),
            cat: "job".into(),
            track: 0,
            kind: EventKind::Instant { at_us },
            args: vec![
                ("index".into(), index.into()),
                ("provenance".into(), provenance.into()),
            ],
        }
    }

    #[test]
    fn a_well_formed_trace_validates_clean() {
        let events = vec![
            span("batch", 0, 0, 100, None),
            span("cache-lookup", 0, 1, 2, Some("0")),
            span("cache-lookup", 0, 2, 3, Some("1")),
            span("simulate", 1, 5, 50, Some("1")),
            span("cache-write", 1, 50, 52, Some("1")),
            finished("0", "mem", 2),
            finished("1", "ran", 53),
        ];
        assert_eq!(validate_events(&events), Vec::<String>::new());
    }

    #[test]
    fn inverted_spans_are_flagged() {
        let events = vec![span("simulate", 1, 50, 10, Some("0"))];
        let violations = validate_events(&events);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("ends before it starts")),
            "{violations:?}"
        );
    }

    #[test]
    fn partial_overlap_on_one_track_is_flagged_but_containment_is_not() {
        let nested = vec![
            span("batch", 0, 0, 100, None),
            span("cache-lookup", 0, 10, 20, Some("0")),
        ];
        assert!(validate_events(&nested).is_empty(), "containment nests");
        let torn = vec![span("a", 0, 0, 50, None), span("b", 0, 25, 75, None)];
        let violations = validate_events(&torn);
        assert!(
            violations.iter().any(|v| v.contains("partially overlaps")),
            "{violations:?}"
        );
        let disjoint = vec![span("a", 0, 0, 50, None), span("b", 0, 50, 75, None)];
        assert!(validate_events(&disjoint).is_empty(), "disjoint is fine");
        let other_track = vec![span("a", 0, 0, 50, None), span("b", 1, 25, 75, None)];
        assert!(
            validate_events(&other_track).is_empty(),
            "tracks are independent"
        );
    }

    #[test]
    fn job_finished_without_its_spans_is_flagged() {
        let no_lookup = vec![finished("3", "mem", 9)];
        let violations = validate_events(&no_lookup);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("no matching `cache-lookup`")),
            "{violations:?}"
        );
        let ran_without_simulate = vec![
            span("cache-lookup", 0, 0, 1, Some("3")),
            finished("3", "ran", 9),
        ];
        let violations = validate_events(&ran_without_simulate);
        assert!(
            violations.iter().any(|v| v.contains("no `simulate` span")),
            "{violations:?}"
        );
    }

    #[test]
    fn typed_and_stringly_index_args_match_each_other() {
        use crate::recorder::ArgValue;
        // Lookup span carries a typed index, the legacy finished
        // instant a stringly one — canonical rendering must unify them.
        let mut lookup = span("cache-lookup", 0, 1, 2, None);
        lookup.args = vec![("index".to_string(), ArgValue::U64(3))];
        let events = vec![lookup, finished("3", "mem", 2)];
        assert_eq!(validate_events(&events), Vec::<String>::new());
    }

    #[test]
    fn jsonl_round_trips_and_flags_malformed_lines() {
        let events = vec![
            span("cache-lookup", 0, 1, 2, Some("0")),
            finished("0", "mem", 2),
        ];
        let jsonl: String = events
            .iter()
            .map(|e| {
                let mut line =
                    serde_json::to_string(&serde::Serialize::to_value(e)).expect("serializes");
                line.push('\n');
                line
            })
            .collect();
        let back = parse_jsonl(&jsonl).expect("parses");
        assert_eq!(back, events);

        let err = parse_jsonl("{\"kind\": \"span\"").expect_err("truncated");
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_jsonl("{\"kind\": \"wat\", \"name\": \"x\", \"cat\": \"c\", \"track\": 0}")
            .expect_err("unknown kind");
        assert!(err.contains("unknown trace event kind"), "{err}");
    }
}
