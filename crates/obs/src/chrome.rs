//! Chrome trace-event export.
//!
//! Converts recorded [`TraceEvent`]s into the Trace Event Format JSON
//! object that Perfetto and `chrome://tracing` load: spans become
//! complete (`"ph": "X"`) events with microsecond `ts`/`dur`, instants
//! become thread-scoped instant (`"ph": "i"`) events, and each track
//! becomes a `tid` with a metadata `thread_name` record so the viewer
//! labels the lanes.

use serde::value::Value;

use crate::recorder::{EventKind, TraceEvent};

/// The Chrome trace-event document for `events`, ready to serialize
/// with `serde_json` and open in Perfetto.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut trace_events: Vec<Value> = Vec::with_capacity(events.len() + 4);

    // One thread_name metadata record per track, so lanes read
    // "track 0 (main)", "track 1", ... instead of bare numbers.
    let mut tracks: Vec<u64> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for track in tracks {
        let label = if track == 0 {
            "track 0 (main)".to_string()
        } else {
            format!("track {track}")
        };
        trace_events.push(Value::Object(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::UInt(0)),
            ("tid".into(), Value::UInt(track)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str(label))]),
            ),
        ]));
    }

    for event in events {
        let args = Value::Object(
            event
                .args
                .iter()
                .map(|(k, v)| (k.clone(), serde::Serialize::to_value(v)))
                .collect(),
        );
        let mut fields: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(event.name.clone())),
            ("cat".into(), Value::Str(event.cat.clone())),
        ];
        match event.kind {
            EventKind::Span { start_us, end_us } => {
                fields.push(("ph".into(), Value::Str("X".into())));
                fields.push(("ts".into(), Value::UInt(start_us)));
                fields.push(("dur".into(), Value::UInt(end_us - start_us)));
            }
            EventKind::Instant { at_us } => {
                fields.push(("ph".into(), Value::Str("i".into())));
                fields.push(("ts".into(), Value::UInt(at_us)));
                // Thread-scoped instant: drawn as a tick on its lane.
                fields.push(("s".into(), Value::Str("t".into())));
            }
        }
        fields.push(("pid".into(), Value::UInt(0)));
        fields.push(("tid".into(), Value::UInt(event.track)));
        fields.push(("args".into(), args));
        trace_events.push(Value::Object(fields));
    }

    Value::Object(vec![
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        ("traceEvents".into(), Value::Array(trace_events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, track: u64, start_us: u64, end_us: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "job".into(),
            track,
            kind: EventKind::Span { start_us, end_us },
            args: vec![("job".into(), "cpu/lu/AdvHetx4".into())],
        }
    }

    #[test]
    fn spans_become_complete_events_with_ts_and_dur() {
        let doc = chrome_trace(&[span("simulate", 1, 10, 45)]);
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one complete event");
        assert_eq!(x.get("name").and_then(Value::as_str), Some("simulate"));
        assert_eq!(x.get("ts").and_then(Value::as_u64), Some(10));
        assert_eq!(x.get("dur").and_then(Value::as_u64), Some(35));
        assert_eq!(x.get("tid").and_then(Value::as_u64), Some(1));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("job"))
                .and_then(Value::as_str),
            Some("cpu/lu/AdvHetx4")
        );
    }

    #[test]
    fn instants_become_thread_scoped_i_events() {
        let doc = chrome_trace(&[TraceEvent {
            name: "job-finished".into(),
            cat: "job".into(),
            track: 0,
            kind: EventKind::Instant { at_us: 99 },
            args: vec![("index".into(), crate::ArgValue::U64(7))],
        }]);
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("array");
        let i = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
            .expect("instant event");
        assert_eq!(i.get("ts").and_then(Value::as_u64), Some(99));
        assert_eq!(i.get("s").and_then(Value::as_str), Some("t"));
        assert_eq!(
            i.get("args")
                .and_then(|a| a.get("index"))
                .and_then(Value::as_u64),
            Some(7),
            "typed args export as JSON numbers"
        );
    }

    #[test]
    fn every_track_gets_one_thread_name_record() {
        let doc = chrome_trace(&[span("a", 0, 0, 1), span("b", 2, 0, 1), span("c", 2, 1, 2)]);
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("array");
        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2, "tracks 0 and 2");
        assert_eq!(
            metas[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("track 0 (main)")
        );
    }
}
