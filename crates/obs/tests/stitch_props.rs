//! Property tests for [`stitch_traces`]: merging per-worker trace logs
//! must never corrupt the timeline.
//!
//! A sharded run hands the supervisor one event log per worker, each
//! numbering its tracks from 0. Three properties make the stitched log
//! trustworthy:
//!
//! 1. **lane disjointness** — no two workers ever share an output
//!    track, for any combination of worker count, per-worker track
//!    usage and empty inputs;
//! 2. **shift-only relabeling** — within one worker the track ids are
//!    relabeled by a constant shift (event order and relative lane
//!    structure untouched), so per-worker nesting survives verbatim;
//! 3. **structural validity** — stitching well-formed inputs yields a
//!    log that [`validate_events`] accepts, i.e. `repro check
//!    --trace-in` never rejects a trace merely because it was sharded.

use proptest::prelude::*;

use hetsim_obs::{stitch_traces, validate_events, EventKind, TraceEvent};

/// One generated event: `(track, start_us, len_us, instant?)`.
type RawEvent = (u64, u64, u64, bool);

/// A worker's event log: spans laid out back-to-back per track (so
/// they trivially nest) plus instants, on a handful of tracks.
fn worker_events() -> impl Strategy<Value = Vec<RawEvent>> {
    proptest::collection::vec((0u64..4, 0u64..1_000, 0u64..50, any::<bool>()), 0..12)
}

/// Materializes a raw log for `worker`, tagging every event name with
/// the worker index and its original track so the stitched output can
/// be attributed back. Span starts are spread out so spans on one
/// track are disjoint (disjoint intervals always nest properly).
fn materialize(worker: usize, raw: &[RawEvent]) -> Vec<TraceEvent> {
    raw.iter()
        .enumerate()
        .map(|(i, &(track, start, len, instant))| {
            let start = start + (i as u64) * 2_000;
            TraceEvent {
                name: format!("w{worker}-t{track}-e{i}"),
                cat: "prop".into(),
                track,
                kind: if instant {
                    EventKind::Instant { at_us: start }
                } else {
                    EventKind::Span {
                        start_us: start,
                        end_us: start + len,
                    }
                },
                args: Vec::new(),
            }
        })
        .collect()
}

/// The worker index an output event originated from, recovered from
/// the name tag.
fn worker_of(event: &TraceEvent) -> usize {
    event.name[1..event.name.find('-').expect("tagged name")]
        .parse()
        .expect("worker tag")
}

/// The original track the event was recorded on.
fn original_track(event: &TraceEvent) -> u64 {
    let rest = &event.name[event.name.find("-t").expect("tagged name") + 2..];
    rest[..rest.find('-').expect("tagged name")]
        .parse()
        .expect("track tag")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No output track is ever shared by two workers, and each
    /// worker's relabeling is a constant shift of its original ids.
    #[test]
    fn workers_never_share_a_lane(raws in proptest::collection::vec(worker_events(), 1..5)) {
        let inputs: Vec<Vec<TraceEvent>> = raws
            .iter()
            .enumerate()
            .map(|(w, raw)| materialize(w, raw))
            .collect();
        let total: usize = inputs.iter().map(Vec::len).sum();
        let stitched = stitch_traces(inputs);
        prop_assert_eq!(stitched.len(), total, "no event dropped or invented");

        // Group output tracks by originating worker.
        let mut lanes: Vec<std::collections::BTreeSet<u64>> =
            vec![std::collections::BTreeSet::new(); raws.len()];
        let mut shifts: Vec<Option<u64>> = vec![None; raws.len()];
        for event in &stitched {
            let w = worker_of(event);
            lanes[w].insert(event.track);
            let shift = event.track - original_track(event);
            match shifts[w] {
                None => shifts[w] = Some(shift),
                Some(s) => prop_assert_eq!(
                    s, shift,
                    "worker {}'s tracks must be relabeled by one constant shift", w
                ),
            }
        }
        for a in 0..lanes.len() {
            for b in a + 1..lanes.len() {
                prop_assert!(
                    lanes[a].is_disjoint(&lanes[b]),
                    "workers {} and {} share a lane: {:?} vs {:?}",
                    a, b, lanes[a], lanes[b]
                );
            }
        }
    }

    /// Stitching well-formed inputs yields a structurally valid trace:
    /// per-track span nesting survives the relabeling.
    #[test]
    fn stitched_traces_stay_structurally_valid(
        raws in proptest::collection::vec(worker_events(), 1..5),
    ) {
        let inputs: Vec<Vec<TraceEvent>> = raws
            .iter()
            .enumerate()
            .map(|(w, raw)| materialize(w, raw))
            .collect();
        for input in &inputs {
            prop_assert!(
                validate_events(input).is_empty(),
                "generator must produce valid inputs"
            );
        }
        let stitched = stitch_traces(inputs);
        let violations = validate_events(&stitched);
        prop_assert!(violations.is_empty(), "stitched trace invalid: {:?}", violations);
    }

    /// Empty inputs anywhere in the list consume no lane space and
    /// shift nothing.
    #[test]
    fn empty_inputs_are_transparent(raw in worker_events(), gaps in 0usize..3) {
        let worker = materialize(0, &raw);
        let mut padded: Vec<Vec<TraceEvent>> = vec![Vec::new(); gaps];
        padded.push(worker.clone());
        let stitched = stitch_traces(padded);
        prop_assert_eq!(stitched, worker, "leading empty inputs must not rebase anything");
    }
}
