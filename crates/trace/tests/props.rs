//! Property tests for the synthetic trace generator.

use proptest::prelude::*;

use hetsim_trace::profile::{BranchBehavior, InstMix, MemoryBehavior, WorkloadProfile};
use hetsim_trace::stream::TraceGenerator;
use hetsim_trace::{apps, OpClass};

fn arbitrary_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1.0f64..16.0,     // mean_dep_distance
        0.0f64..1.0,      // spatial
        0.0f64..1.0,      // temporal
        0.5f64..1.0,      // bias
        0.0f64..1.0,      // loop fraction
        2u32..64,         // loop period
        16u64..(4 << 20), // working set
    )
        .prop_map(
            |(k, spatial, temporal, bias, loop_fraction, loop_period, ws)| WorkloadProfile {
                name: "prop",
                suite: "prop",
                mix: InstMix {
                    int_alu: 0.30,
                    int_mul: 0.02,
                    int_div: 0.01,
                    fp_add: 0.12,
                    fp_mul: 0.12,
                    fp_div: 0.02,
                    load: 0.21,
                    store: 0.09,
                    branch: 0.11,
                },
                mean_dep_distance: k,
                memory: MemoryBehavior {
                    working_set_bytes: ws.max(16 * 1024),
                    spatial,
                    temporal,
                    hot_region_bytes: 8 * 1024,
                },
                branches: BranchBehavior {
                    sites: 64,
                    bias,
                    loop_fraction,
                    loop_period,
                },
                parallel_fraction: 0.9,
                default_length: 10_000,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any valid profile yields a deterministic, well-formed stream.
    #[test]
    fn generator_is_total_and_deterministic(profile in arbitrary_profile(), seed in any::<u64>()) {
        let a: Vec<_> = TraceGenerator::new(&profile, seed).take(2000).collect();
        let b: Vec<_> = TraceGenerator::new(&profile, seed).take(2000).collect();
        prop_assert_eq!(&a, &b);
        for (i, inst) in a.iter().enumerate() {
            // Producer distances never reach before the start of the trace
            // in spirit: they are clamped and at least 1.
            for d in inst.source_distances() {
                prop_assert!(d >= 1);
                prop_assert!(d <= 4095);
            }
            match inst.op {
                OpClass::Load | OpClass::Store => prop_assert!(inst.addr.is_some(), "inst {i}"),
                OpClass::Branch => prop_assert!(inst.branch.is_some(), "inst {i}"),
                _ => {
                    prop_assert!(inst.addr.is_none());
                    prop_assert!(inst.branch.is_none());
                }
            }
        }
    }

    /// Memory addresses stay inside the thread's working-set window.
    #[test]
    fn addresses_stay_in_bounds(profile in arbitrary_profile(), thread in 0u32..8) {
        let base = u64::from(thread) * hetsim_trace::stream::THREAD_ADDRESS_STRIDE;
        for inst in TraceGenerator::for_thread(&profile, 3, thread).take(3000) {
            if let Some(addr) = inst.addr {
                prop_assert!(addr >= base);
                prop_assert!(addr < base + profile.memory.working_set_bytes);
            }
        }
    }

    /// Calls and returns stay balanced in every prefix.
    #[test]
    fn calls_and_returns_balance(seed in any::<u64>()) {
        let profile = apps::profile("barnes").expect("known app");
        let mut depth: i64 = 0;
        for inst in TraceGenerator::new(&profile, seed).take(20_000) {
            if let Some(b) = inst.branch {
                if b.is_call { depth += 1; }
                if b.is_return { depth -= 1; }
                prop_assert!(depth >= 0, "return without call");
            }
        }
    }

    /// The realized instruction mix tracks the profile's weights for every
    /// named application.
    #[test]
    fn named_profiles_track_their_mix(seed in any::<u64>(), idx in 0usize..14) {
        let profile = &apps::all()[idx];
        let n = 30_000;
        let trace: Vec<_> = TraceGenerator::new(profile, seed).take(n).collect();
        let loads = trace.iter().filter(|i| i.op == OpClass::Load).count() as f64 / n as f64;
        prop_assert!((loads - profile.mix.load).abs() < 0.03,
            "{}: load fraction {} vs {}", profile.name, loads, profile.mix.load);
    }
}
