//! Statistical workload profiles.
//!
//! A [`WorkloadProfile`] is the complete parameterization of one synthetic
//! application: everything the trace generator samples from. Profiles for
//! the paper's applications live in [`crate::apps`].

/// Instruction-class mix. Weights are relative; they are normalized by the
/// generator, but by convention the named profiles sum to 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstMix {
    /// Simple integer ALU ops.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// Integer divides.
    pub int_div: f64,
    /// FP adds.
    pub fp_add: f64,
    /// FP multiplies.
    pub fp_mul: f64,
    /// FP divides.
    pub fp_div: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
}

impl InstMix {
    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.load
            + self.store
            + self.branch
    }

    /// Fraction of floating-point operations.
    pub fn fp_fraction(&self) -> f64 {
        (self.fp_add + self.fp_mul + self.fp_div) / self.total()
    }

    /// Validates that every weight is finite and non-negative and the total
    /// is positive.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            ("int_alu", self.int_alu),
            ("int_mul", self.int_mul),
            ("int_div", self.int_div),
            ("fp_add", self.fp_add),
            ("fp_mul", self.fp_mul),
            ("fp_div", self.fp_div),
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
        ];
        for (name, w) in parts {
            if !w.is_finite() || w < 0.0 {
                return Err(format!("instruction mix weight {name} is invalid: {w}"));
            }
        }
        if self.total() <= 0.0 {
            return Err("instruction mix total must be positive".to_string());
        }
        Ok(())
    }
}

/// Memory-behaviour knobs for the address generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBehavior {
    /// Working-set size in bytes; random accesses fall within it.
    pub working_set_bytes: u64,
    /// Probability that an access continues a sequential (unit-stride)
    /// stream — models spatial locality and prefetch-friendly scans.
    pub spatial: f64,
    /// Probability that a (non-sequential) access hits a small hot region —
    /// models stack/temporally hot data.
    pub temporal: f64,
    /// Size of the hot region in bytes.
    pub hot_region_bytes: u64,
}

impl MemoryBehavior {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.working_set_bytes == 0 {
            return Err("working set must be non-empty".to_string());
        }
        if self.hot_region_bytes == 0 || self.hot_region_bytes > self.working_set_bytes {
            return Err(format!(
                "hot region ({}) must be non-empty and within the working set ({})",
                self.hot_region_bytes, self.working_set_bytes
            ));
        }
        for (name, p) in [("spatial", self.spatial), ("temporal", self.temporal)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} locality must be in [0,1]: {p}"));
            }
        }
        Ok(())
    }
}

/// Branch-behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBehavior {
    /// Number of static branch sites cycled through by the trace.
    pub sites: u32,
    /// Probability that a data-dependent branch follows its per-site
    /// dominant direction (a real predictor will approach this accuracy
    /// from below on such branches).
    pub bias: f64,
    /// Fraction of branch instances that are loop back-edges with period
    /// `loop_period` (predictable by local history except at loop exits).
    pub loop_fraction: f64,
    /// Loop trip count for back-edge branches.
    pub loop_period: u32,
}

impl BranchBehavior {
    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.sites == 0 {
            return Err("need at least one branch site".to_string());
        }
        if !(0.5..=1.0).contains(&self.bias) {
            return Err(format!(
                "bias is a dominant-direction probability in [0.5,1]: {}",
                self.bias
            ));
        }
        if !(0.0..=1.0).contains(&self.loop_fraction) {
            return Err(format!(
                "loop fraction must be in [0,1]: {}",
                self.loop_fraction
            ));
        }
        if self.loop_period < 2 {
            return Err("loop period must be at least 2".to_string());
        }
        Ok(())
    }
}

/// The full statistical description of one synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Application name (e.g. `"fft"`).
    pub name: &'static str,
    /// Benchmark suite the application comes from (e.g. `"SPLASH-2"`).
    pub suite: &'static str,
    /// Instruction-class mix.
    pub mix: InstMix,
    /// Mean register dependency distance (geometric distribution); larger
    /// means more ILP.
    pub mean_dep_distance: f64,
    /// Memory behaviour.
    pub memory: MemoryBehavior,
    /// Branch behaviour.
    pub branches: BranchBehavior,
    /// Parallelizable fraction of the work (Amdahl), used by multicore runs.
    pub parallel_fraction: f64,
    /// Default dynamic instruction count for full experiment runs.
    pub default_length: u64,
}

impl WorkloadProfile {
    /// Validates every field; returns a description of the first problem.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any weight, probability or size is out of range.
    pub fn validate(&self) -> Result<(), String> {
        self.mix.validate()?;
        self.memory.validate()?;
        self.branches.validate()?;
        if self.mean_dep_distance < 1.0 || self.mean_dep_distance.is_nan() {
            return Err(format!(
                "mean dependency distance must be >= 1: {}",
                self.mean_dep_distance
            ));
        }
        if !(0.0..=1.0).contains(&self.parallel_fraction) {
            return Err(format!(
                "parallel fraction must be in [0,1]: {}",
                self.parallel_fraction
            ));
        }
        if self.default_length == 0 {
            return Err("default length must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test",
            suite: "unit",
            mix: InstMix {
                int_alu: 0.35,
                int_mul: 0.02,
                int_div: 0.01,
                fp_add: 0.10,
                fp_mul: 0.10,
                fp_div: 0.01,
                load: 0.22,
                store: 0.09,
                branch: 0.10,
            },
            mean_dep_distance: 5.0,
            memory: MemoryBehavior {
                working_set_bytes: 1 << 20,
                spatial: 0.6,
                temporal: 0.3,
                hot_region_bytes: 4096,
            },
            branches: BranchBehavior {
                sites: 64,
                bias: 0.95,
                loop_fraction: 0.4,
                loop_period: 16,
            },
            parallel_fraction: 0.95,
            default_length: 100_000,
        }
    }

    #[test]
    fn sane_profile_validates() {
        sane_profile().validate().expect("profile should be valid");
    }

    #[test]
    fn mix_total_and_fp_fraction() {
        let p = sane_profile();
        assert!((p.mix.total() - 1.0).abs() < 1e-12);
        assert!((p.mix.fp_fraction() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn rejects_negative_weight() {
        let mut p = sane_profile();
        p.mix.fp_add = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_oversized_hot_region() {
        let mut p = sane_profile();
        p.memory.hot_region_bytes = p.memory.working_set_bytes * 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_low_bias() {
        let mut p = sane_profile();
        p.branches.bias = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_sub_unit_dep_distance() {
        let mut p = sane_profile();
        p.mean_dep_distance = 0.5;
        assert!(p.validate().is_err());
    }
}
