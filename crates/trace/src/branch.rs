//! Per-site branch outcome generation.
//!
//! The CPU simulator runs a *real* tournament predictor (paper Table III),
//! so branch outcomes must have learnable per-site structure rather than
//! being i.i.d. coin flips. Each synthetic branch site is one of:
//!
//! * a **loop back-edge**: taken `loop_period - 1` times, then not-taken
//!   once — perfectly learnable by local history except at the exit;
//! * a **biased data-dependent branch**: follows a per-site dominant
//!   direction with probability `bias` — a predictor approaches `bias`
//!   accuracy on these;
//! * occasionally a **call/return pair** exercising the RAS.
//!
//! The resulting misprediction rate is therefore an emergent property of
//! profile knobs plus predictor quality, exactly as in a real simulation.

use rand::rngs::StdRng;
use rand::Rng;

use crate::isa::BranchInfo;
use crate::profile::BranchBehavior;

/// Fraction of branch instances that are call/return pairs.
const CALL_RETURN_FRACTION: f64 = 0.04;

/// Synthetic code region where branch sites live (keeps branch PCs disjoint
/// from data addresses).
const CODE_BASE: u64 = 0x4000_0000;

/// Stateful branch outcome generator for one thread.
#[derive(Debug, Clone)]
pub struct BranchModel {
    behavior: BranchBehavior,
    /// Per-site state: loop counters for loop sites, dominant direction for
    /// biased sites.
    sites: Vec<SiteState>,
    /// Round-robin cursor over sites (program phases revisit the same
    /// branches repeatedly, so we cycle rather than sample uniformly).
    cursor: usize,
    /// Depth of the simulated call stack, to keep calls/returns balanced.
    call_depth: u32,
}

#[derive(Debug, Clone)]
enum SiteState {
    Loop { count: u32 },
    Biased { taken_dominant: bool },
}

impl BranchModel {
    /// Creates the model; site kinds and biases are fixed by `seed`-driven
    /// sampling at construction so the *static* program is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `behavior` fails validation.
    pub fn new(behavior: BranchBehavior, rng: &mut StdRng) -> Self {
        behavior.validate().expect("valid branch behavior");
        let sites = (0..behavior.sites)
            .map(|_| {
                if rng.gen_bool(behavior.loop_fraction) {
                    SiteState::Loop { count: 0 }
                } else {
                    SiteState::Biased {
                        taken_dominant: rng.gen_bool(0.5),
                    }
                }
            })
            .collect();
        BranchModel {
            behavior,
            sites,
            cursor: 0,
            call_depth: 0,
        }
    }

    /// Generates the next dynamic branch instance.
    pub fn next_branch(&mut self, rng: &mut StdRng) -> BranchInfo {
        // Call/return handling first: returns only when the stack is
        // non-empty, calls with a small probability.
        if self.call_depth > 0 && rng.gen_bool(CALL_RETURN_FRACTION) {
            self.call_depth -= 1;
            return BranchInfo {
                pc: CODE_BASE + 0xF000 + u64::from(self.call_depth) * 4,
                taken: true,
                is_call: false,
                is_return: true,
            };
        }
        if self.call_depth < 24 && rng.gen_bool(CALL_RETURN_FRACTION) {
            let pc = CODE_BASE + 0xE000 + u64::from(self.call_depth) * 4;
            self.call_depth += 1;
            return BranchInfo {
                pc,
                taken: true,
                is_call: true,
                is_return: false,
            };
        }

        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.sites.len();
        let pc = CODE_BASE + (idx as u64) * 16;
        let taken = match &mut self.sites[idx] {
            SiteState::Loop { count } => {
                *count += 1;
                if *count >= self.behavior.loop_period {
                    *count = 0;
                    false // loop exit
                } else {
                    true // back-edge taken
                }
            }
            SiteState::Biased { taken_dominant } => {
                let dominant = *taken_dominant;
                if rng.gen_bool(self.behavior.bias) {
                    dominant
                } else {
                    !dominant
                }
            }
        };
        BranchInfo {
            pc,
            taken,
            is_call: false,
            is_return: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn behavior() -> BranchBehavior {
        BranchBehavior {
            sites: 32,
            bias: 0.95,
            loop_fraction: 0.5,
            loop_period: 10,
        }
    }

    #[test]
    fn loop_sites_follow_period() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = BranchModel::new(
            BranchBehavior {
                sites: 1,
                bias: 0.95,
                loop_fraction: 1.0,
                loop_period: 4,
            },
            &mut rng,
        );
        // Collect outcomes of the single (loop) site, skipping call/returns.
        let mut outcomes = Vec::new();
        while outcomes.len() < 8 {
            let b = m.next_branch(&mut rng);
            if !b.is_call && !b.is_return {
                outcomes.push(b.taken);
            }
        }
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn biased_sites_follow_dominant_direction() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = BranchModel::new(
            BranchBehavior {
                sites: 8,
                bias: 0.9,
                loop_fraction: 0.0,
                loop_period: 10,
            },
            &mut rng,
        );
        // Per-site dominant-direction agreement should be ~bias.
        let mut per_site: std::collections::HashMap<u64, (u32, u32)> = Default::default();
        for _ in 0..20_000 {
            let b = m.next_branch(&mut rng);
            if b.is_call || b.is_return {
                continue;
            }
            let e = per_site.entry(b.pc).or_insert((0, 0));
            if b.taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        for (pc, (t, n)) in per_site {
            let total = t + n;
            let dominant = t.max(n) as f64 / total as f64;
            assert!(
                (0.85..=0.95).contains(&dominant),
                "site {pc:x} dominant fraction {dominant}"
            );
        }
    }

    #[test]
    fn calls_and_returns_stay_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut m = BranchModel::new(behavior(), &mut rng);
        let mut depth: i64 = 0;
        for _ in 0..50_000 {
            let b = m.next_branch(&mut rng);
            if b.is_call {
                depth += 1;
            }
            if b.is_return {
                depth -= 1;
            }
            assert!(depth >= 0, "return without a call");
            assert!(depth <= 24, "runaway call depth");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = BranchModel::new(behavior(), &mut rng);
            (0..1000)
                .map(|_| m.next_branch(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
