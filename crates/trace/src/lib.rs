//! Synthetic instruction traces standing in for SPLASH-2 / PARSEC binaries.
//!
//! The paper evaluates HetCore by running SPLASH-2 and PARSEC applications
//! under the Multi2Sim simulator. This reproduction cannot ship those
//! binaries or a full x86 functional front-end, so each application is
//! replaced by a *deterministic, seeded synthetic instruction stream* whose
//! statistical profile captures exactly the workload properties the HetCore
//! evaluation is sensitive to:
//!
//! * the instruction-class mix (FP add/mul/div, integer ALU/mul/div, loads,
//!   stores, branches) — drives FPU/ALU/TFET-pipelining sensitivity;
//! * the register dependency-distance distribution — drives ILP, i.e. how
//!   well deeper TFET pipelines stay filled;
//! * working-set size and spatial/temporal locality — drives DL1/L2/L3 hit
//!   rates, i.e. sensitivity to the TFET cache latencies and the asymmetric
//!   DL1;
//! * branch-history behaviour — drives the misprediction rate, i.e. how
//!   much the deeper TFET ALU pipeline amplifies the flush penalty;
//! * a parallel fraction — drives multicore scaling for AdvHet-2X.
//!
//! Modules:
//!
//! * [`isa`] — the micro-op model consumed by the CPU simulator.
//! * [`profile`] — [`profile::WorkloadProfile`], the statistical knobs.
//! * [`apps`] — the 14 named application profiles (10 SPLASH-2 + 4 PARSEC).
//! * [`addr`] — the memory address-stream generator.
//! * [`branch`] — per-site branch outcome generation.
//! * [`stream`] — the deterministic trace generator.
//!
//! # Example
//!
//! ```
//! use hetsim_trace::{apps, stream::TraceGenerator};
//!
//! let profile = apps::profile("fft").expect("fft is a known app");
//! let trace: Vec<_> = TraceGenerator::new(&profile, 42).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! // Determinism: the same seed yields the same trace.
//! let again: Vec<_> = TraceGenerator::new(&profile, 42).take(1000).collect();
//! assert_eq!(trace, again);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod apps;
pub mod branch;
pub mod cache;
pub mod fuzz;
pub mod isa;
pub mod profile;
pub mod stream;

pub use isa::{Inst, OpClass};
pub use profile::WorkloadProfile;
pub use stream::TraceGenerator;
