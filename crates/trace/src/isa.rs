//! The micro-op model consumed by the cycle-level CPU simulator.
//!
//! Instructions carry everything the *timing* model needs and nothing more:
//! an operation class (which selects a functional unit and latency), up to
//! two register dependencies expressed as *producer distances* (how many
//! instructions earlier the producing instruction appeared in program
//! order), an optional memory address, and optional branch information.

/// Operation classes, mirroring the functional-unit taxonomy of the paper's
/// Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Simple integer ALU operation (add/sub/logic/shift/compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined in hardware).
    IntDiv,
    /// Floating-point add/sub.
    FpAdd,
    /// Floating-point multiply (or fused multiply-add).
    FpMul,
    /// Floating-point divide/sqrt (issue-limited).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// All operation classes.
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Whether this class produces a register result other instructions can
    /// depend on.
    pub fn produces_value(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }

    /// Whether this class writes a floating-point register.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// Whether this class accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// Branch information attached to [`OpClass::Branch`] instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// The (synthetic) program counter of the branch site. Branch sites are
    /// reused across the trace so predictors can learn per-site behaviour.
    pub pc: u64,
    /// Architectural outcome of this dynamic instance.
    pub taken: bool,
    /// Whether this instance is a call (pushes the RAS).
    pub is_call: bool,
    /// Whether this instance is a return (pops the RAS).
    pub is_return: bool,
}

/// One dynamic micro-op in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation class.
    pub op: OpClass,
    /// Distance (in dynamic instructions, >= 1) to the producer of the first
    /// source operand, or `None` if the operand is ready at rename (e.g. an
    /// immediate or a long-dead value).
    pub src1_dist: Option<u32>,
    /// Same for the second source operand.
    pub src2_dist: Option<u32>,
    /// Byte address touched by loads/stores.
    pub addr: Option<u64>,
    /// Branch site/outcome for branches.
    pub branch: Option<BranchInfo>,
}

impl Inst {
    /// A dependency-free instruction of class `op`.
    pub fn simple(op: OpClass) -> Self {
        Inst {
            op,
            src1_dist: None,
            src2_dist: None,
            addr: None,
            branch: None,
        }
    }

    /// Iterator over the producer distances that are present.
    pub fn source_distances(&self) -> impl Iterator<Item = u32> + '_ {
        self.src1_dist.into_iter().chain(self.src2_dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_producers() {
        assert!(OpClass::IntAlu.produces_value());
        assert!(OpClass::Load.produces_value());
        assert!(!OpClass::Store.produces_value());
        assert!(!OpClass::Branch.produces_value());
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::FpDiv.is_fp());
        assert!(!OpClass::IntDiv.is_fp());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn simple_inst_has_no_dependencies() {
        let i = Inst::simple(OpClass::IntAlu);
        assert_eq!(i.source_distances().count(), 0);
    }

    #[test]
    fn source_distances_yields_present_operands() {
        let i = Inst {
            op: OpClass::FpAdd,
            src1_dist: Some(3),
            src2_dist: None,
            addr: None,
            branch: None,
        };
        assert_eq!(i.source_distances().collect::<Vec<_>>(), vec![3]);
    }
}
