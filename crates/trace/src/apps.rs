//! Profiles for the paper's CPU applications.
//!
//! The paper evaluates ten SPLASH-2 applications — Barnes (16K particles),
//! Cholesky (tk29.O), FFT (2^20), FMM (16K), LU (512x512), Radiosity
//! (batch), Radix (2M keys), Raytrace (teapot), Water-Nsquared and
//! Water-Spatial — and four PARSEC applications — Blackscholes (16K),
//! Canneal (10000), Streamcluster (4K) and Fluidanimate (15K).
//!
//! Each profile below encodes the well-known qualitative character of the
//! application (instruction mix, footprint, locality, branchiness,
//! scalability) in the statistical form the trace generator consumes. The
//! values are not measurements of the paper's exact inputs — the binaries
//! are substituted per DESIGN.md — but they are chosen so the *spread* of
//! behaviours (FP-heavy vs. integer, cache-resident vs. memory-bound,
//! predictable vs. branchy) matches what the paper's figures show per app.

use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, WorkloadProfile};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Default dynamic instruction count for full experiment runs.
const FULL_RUN: u64 = 300_000;

#[allow(clippy::too_many_arguments)]
const fn mk(
    name: &'static str,
    suite: &'static str,
    mix: InstMix,
    mean_dep_distance: f64,
    working_set_bytes: u64,
    spatial: f64,
    temporal: f64,
    bias: f64,
    loop_fraction: f64,
    loop_period: u32,
    parallel_fraction: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        suite,
        mix,
        mean_dep_distance,
        memory: MemoryBehavior {
            working_set_bytes,
            spatial,
            temporal,
            hot_region_bytes: 8 * KB,
        },
        branches: BranchBehavior {
            sites: 128,
            bias,
            loop_fraction,
            loop_period,
        },
        parallel_fraction,
        default_length: FULL_RUN,
    }
}

#[allow(clippy::too_many_arguments)]
const fn mix(
    int_alu: f64,
    int_mul: f64,
    int_div: f64,
    fp_add: f64,
    fp_mul: f64,
    fp_div: f64,
    load: f64,
    store: f64,
    branch: f64,
) -> InstMix {
    InstMix {
        int_alu,
        int_mul,
        int_div,
        fp_add,
        fp_mul,
        fp_div,
        load,
        store,
        branch,
    }
}

/// The fourteen named application profiles, in the paper's order.
pub fn all() -> Vec<WorkloadProfile> {
    vec![
        // ---------------- SPLASH-2 ----------------
        // Barnes-Hut N-body: FP-heavy tree walk, pointer-y, decent ILP.
        mk(
            "barnes",
            "SPLASH-2",
            mix(0.24, 0.01, 0.00, 0.14, 0.16, 0.02, 0.23, 0.08, 0.12),
            5.5,
            256 * KB,
            0.65,
            0.70,
            0.94,
            0.35,
            12,
            0.97,
        ),
        // Cholesky factorization: dense FP blocks, strided, loopy.
        mk(
            "cholesky",
            "SPLASH-2",
            mix(0.23, 0.02, 0.00, 0.15, 0.19, 0.01, 0.22, 0.09, 0.09),
            6.5,
            192 * KB,
            0.82,
            0.70,
            0.97,
            0.55,
            24,
            0.93,
        ),
        // 1-D FFT on 2^20 points: very high ILP butterflies, large strides.
        mk(
            "fft",
            "SPLASH-2",
            mix(0.20, 0.02, 0.00, 0.19, 0.21, 0.00, 0.21, 0.10, 0.07),
            8.0,
            MB,
            0.85,
            0.60,
            0.985,
            0.70,
            32,
            0.98,
        ),
        // Fast Multipole Method: FP-heavy like barnes, more regular.
        mk(
            "fmm",
            "SPLASH-2",
            mix(0.23, 0.01, 0.00, 0.16, 0.18, 0.02, 0.21, 0.08, 0.11),
            6.0,
            256 * KB,
            0.72,
            0.68,
            0.95,
            0.45,
            16,
            0.96,
        ),
        // LU 512x512: blocked dense kernel, small footprint, DL1-resident.
        mk(
            "lu",
            "SPLASH-2",
            mix(0.22, 0.02, 0.00, 0.17, 0.21, 0.00, 0.21, 0.09, 0.08),
            7.0,
            128 * KB,
            0.90,
            0.85,
            0.98,
            0.70,
            32,
            0.97,
        ),
        // Radiosity: irregular, branchy visibility computations.
        mk(
            "radiosity",
            "SPLASH-2",
            mix(0.27, 0.01, 0.00, 0.13, 0.13, 0.02, 0.22, 0.07, 0.15),
            4.5,
            384 * KB,
            0.55,
            0.70,
            0.92,
            0.30,
            10,
            0.92,
        ),
        // Radix sort, 2M keys: integer-only streaming scatter.
        mk(
            "radix",
            "SPLASH-2",
            mix(0.35, 0.02, 0.00, 0.00, 0.00, 0.00, 0.29, 0.24, 0.10),
            5.0,
            2 * MB,
            0.68,
            0.40,
            0.97,
            0.65,
            64,
            0.98,
        ),
        // Raytrace (teapot): very branchy traversal, poor locality.
        mk(
            "raytrace",
            "SPLASH-2",
            mix(0.25, 0.01, 0.00, 0.13, 0.14, 0.03, 0.21, 0.05, 0.18),
            4.0,
            2 * MB,
            0.45,
            0.65,
            0.90,
            0.25,
            8,
            0.95,
        ),
        // Water-Nsquared: O(n^2) molecular forces, small hot footprint,
        // FP-div heavy (distance reciprocals).
        mk(
            "water-nsq",
            "SPLASH-2",
            mix(0.19, 0.01, 0.00, 0.18, 0.20, 0.04, 0.20, 0.08, 0.10),
            5.5,
            96 * KB,
            0.78,
            0.85,
            0.97,
            0.55,
            20,
            0.96,
        ),
        // Water-Spatial: cell lists, slightly larger footprint.
        mk(
            "water-sp",
            "SPLASH-2",
            mix(0.20, 0.01, 0.00, 0.17, 0.19, 0.03, 0.20, 0.09, 0.11),
            5.5,
            128 * KB,
            0.75,
            0.80,
            0.96,
            0.50,
            18,
            0.97,
        ),
        // ---------------- PARSEC ----------------
        // Blackscholes: embarrassingly parallel FP (exp/log/div), tiny WS.
        mk(
            "blackscholes",
            "PARSEC",
            mix(0.16, 0.01, 0.00, 0.22, 0.26, 0.02, 0.18, 0.07, 0.08),
            7.5,
            64 * KB,
            0.92,
            0.85,
            0.99,
            0.80,
            64,
            0.99,
        ),
        // Canneal: pointer-chasing simulated annealing, memory-bound.
        mk(
            "canneal",
            "PB-PARSEC",
            mix(0.33, 0.01, 0.00, 0.02, 0.02, 0.00, 0.33, 0.13, 0.16),
            3.5,
            48 * MB,
            0.08,
            0.25,
            0.92,
            0.20,
            8,
            0.90,
        ),
        // Streamcluster: streaming distance computations, FP + big scans.
        mk(
            "streamcluster",
            "PARSEC",
            mix(0.21, 0.01, 0.00, 0.17, 0.20, 0.01, 0.23, 0.07, 0.10),
            6.5,
            2 * MB,
            0.88,
            0.45,
            0.97,
            0.65,
            48,
            0.97,
        ),
        // Fluidanimate: particle SPH, FP with moderate locality.
        mk(
            "fluidanimate",
            "PARSEC",
            mix(0.22, 0.01, 0.00, 0.16, 0.18, 0.03, 0.21, 0.09, 0.10),
            5.5,
            512 * KB,
            0.68,
            0.65,
            0.95,
            0.45,
            16,
            0.96,
        ),
    ]
}

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// The application names in the paper's order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_apps() {
        assert_eq!(all().len(), 14);
    }

    #[test]
    fn every_profile_validates() {
        for p in all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn mixes_sum_to_one() {
        for p in all() {
            assert!(
                (p.mix.total() - 1.0).abs() < 1e-9,
                "{} sums to {}",
                p.name,
                p.mix.total()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile("canneal").is_some());
        assert!(profile("doom").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut n = names();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 14);
    }

    #[test]
    fn radix_is_integer_only() {
        let p = profile("radix").expect("radix exists");
        assert_eq!(p.mix.fp_fraction(), 0.0);
    }

    #[test]
    fn canneal_is_memory_bound_and_blackscholes_is_not() {
        let canneal = profile("canneal").expect("exists");
        let bs = profile("blackscholes").expect("exists");
        assert!(canneal.memory.working_set_bytes > 16 * MB);
        assert!(canneal.memory.spatial < 0.2);
        assert!(bs.memory.working_set_bytes <= MB);
        assert!(bs.memory.spatial > 0.7);
    }

    #[test]
    fn suites_cover_splash2_and_parsec() {
        let suites: std::collections::HashSet<_> = all().iter().map(|p| p.suite).collect();
        assert!(suites.iter().any(|s| s.contains("SPLASH")));
        assert!(suites.iter().any(|s| s.contains("PARSEC")));
    }
}
