//! Memory address-stream generation.
//!
//! The generator mixes three access patterns, weighted by the profile's
//! locality knobs:
//!
//! * a *blocked sequential stream* (word-stride, see [`ACCESS_BYTES`]):
//!   the stream makes [`STREAM_PASSES`] passes over one [`BLOCK_BYTES`]
//!   block before moving to the next block of the working set — the
//!   tiled/blocked reuse structure of real kernels (LU blocks, FFT
//!   stages, stencil sweeps), which is what makes their misses hit L2/L3
//!   rather than DRAM;
//! * a *hot region* (small, heavily reused) — models stack frames and
//!   temporally hot data structures;
//! * *random accesses* uniformly over the working set — models hashing,
//!   pointer chasing and scatter/gather.
//!
//! Together with the cache geometry these three knobs determine DL1/L2/L3
//! hit rates, which is what the HetCore evaluation is sensitive to.

use rand::rngs::StdRng;
use rand::Rng;

use crate::profile::MemoryBehavior;

/// Stride of the sequential stream. Real code makes several accesses per
/// element (reads, updates, neighbours), so the stream advances one 4-byte
/// word at a time: 15 of 16 sequential accesses stay within a 64 B line.
pub const ACCESS_BYTES: u64 = 4;

/// Tile size of the blocked stream (capped at the working-set size).
/// Sized to the DL1 so that re-passes over a tile hit the L1, as blocked
/// kernels are tuned to do.
pub const BLOCK_BYTES: u64 = 32 * 1024;

/// Passes the stream makes over a block before moving on.
pub const STREAM_PASSES: u32 = 6;

/// Ceiling of the medium-locality region used by most non-stream accesses
/// (index structures, lookup tables): L2/L3-resident, not DRAM.
pub const MEDIUM_REGION_BYTES: u64 = 512 * 1024;

/// Share of non-stream, non-hot accesses that stay within the medium
/// region; the rest scatter over the full working set.
pub const MEDIUM_REGION_SHARE: f64 = 0.7;

/// Stateful address generator for one thread's data stream.
#[derive(Debug, Clone)]
pub struct AddressGenerator {
    behavior: MemoryBehavior,
    /// Base of this thread's address space (lets multicore traces occupy
    /// disjoint regions).
    base: u64,
    /// Stream cursor within the current block.
    seq_cursor: u64,
    /// Offset of the current block within the working set.
    block_base: u64,
    /// Effective block size (min of [`BLOCK_BYTES`] and the working set).
    block_bytes: u64,
    /// Passes completed over the current block.
    pass: u32,
}

impl AddressGenerator {
    /// Creates a generator over `behavior`'s working set, placed at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `behavior` fails validation.
    pub fn new(behavior: MemoryBehavior, base: u64) -> Self {
        behavior.validate().expect("valid memory behavior");
        let block_bytes = BLOCK_BYTES.min(behavior.working_set_bytes);
        AddressGenerator {
            behavior,
            base,
            seq_cursor: 0,
            block_base: 0,
            block_bytes,
            pass: 0,
        }
    }

    /// Generates the next data address.
    pub fn next_addr(&mut self, rng: &mut StdRng) -> u64 {
        let ws = self.behavior.working_set_bytes;
        let r: f64 = rng.gen();
        if r < self.behavior.spatial {
            // Continue the blocked stream.
            self.seq_cursor += ACCESS_BYTES;
            if self.seq_cursor >= self.block_bytes {
                self.seq_cursor = 0;
                self.pass += 1;
                if self.pass >= STREAM_PASSES {
                    self.pass = 0;
                    self.block_base = (self.block_base + self.block_bytes) % ws;
                }
            }
            self.base + (self.block_base + self.seq_cursor) % ws
        } else if r < self.behavior.spatial + (1.0 - self.behavior.spatial) * self.behavior.temporal
        {
            // Hot-region access.
            let off =
                rng.gen_range(0..self.behavior.hot_region_bytes / ACCESS_BYTES) * ACCESS_BYTES;
            self.base + off
        } else if rng.gen_bool(MEDIUM_REGION_SHARE) {
            // Irregular access to medium-locality data (index structures,
            // tables): bounded region, L2/L3-resident once warm.
            let region = MEDIUM_REGION_BYTES.min(ws);
            let off = rng.gen_range(0..region / ACCESS_BYTES) * ACCESS_BYTES;
            self.base + off
        } else {
            // Truly global scatter over the working set.
            let off = rng.gen_range(0..ws / ACCESS_BYTES) * ACCESS_BYTES;
            self.base + off
        }
    }

    /// The memory behaviour this generator samples from.
    pub fn behavior(&self) -> &MemoryBehavior {
        &self.behavior
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn behavior(spatial: f64, temporal: f64) -> MemoryBehavior {
        MemoryBehavior {
            working_set_bytes: 1 << 20,
            spatial,
            temporal,
            hot_region_bytes: 4096,
        }
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let mut g = AddressGenerator::new(behavior(0.5, 0.3), 0x1000_0000);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = g.next_addr(&mut rng);
            assert!(a >= 0x1000_0000);
            assert!(a < 0x1000_0000 + (1 << 20));
        }
    }

    #[test]
    fn high_spatial_locality_is_mostly_sequential() {
        let mut g = AddressGenerator::new(behavior(0.95, 0.0), 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = g.next_addr(&mut rng);
        let mut sequential = 0;
        let n = 10_000;
        for _ in 0..n {
            let a = g.next_addr(&mut rng);
            if a == prev + ACCESS_BYTES {
                sequential += 1;
            }
            prev = a;
        }
        assert!(
            sequential as f64 / n as f64 > 0.85,
            "sequential {sequential}/{n}"
        );
    }

    #[test]
    fn zero_spatial_locality_is_rarely_sequential() {
        let mut g = AddressGenerator::new(behavior(0.0, 0.0), 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = g.next_addr(&mut rng);
        let mut sequential = 0;
        let n = 10_000;
        for _ in 0..n {
            let a = g.next_addr(&mut rng);
            if a == prev + ACCESS_BYTES {
                sequential += 1;
            }
            prev = a;
        }
        assert!(sequential < n / 100, "sequential {sequential}/{n}");
    }

    #[test]
    fn temporal_locality_concentrates_in_hot_region() {
        let mut g = AddressGenerator::new(behavior(0.0, 0.9), 0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let hot = (0..n).filter(|_| g.next_addr(&mut rng) < 4096).count();
        assert!(hot as f64 / n as f64 > 0.8, "hot {hot}/{n}");
    }

    #[test]
    fn accesses_are_word_aligned() {
        let mut g = AddressGenerator::new(behavior(0.3, 0.3), 0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(g.next_addr(&mut rng) % ACCESS_BYTES, 0);
        }
    }
}
