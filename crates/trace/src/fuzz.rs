//! Seeded workload fuzzer for the metamorphic check harness.
//!
//! `repro check --fuzz N` needs workloads *outside* the 14 calibrated
//! application profiles: the invariant layer should hold for any legal
//! instruction mix, not just the SPLASH-2/PARSEC points. This module
//! samples uniformly-random but always-[`WorkloadProfile::validate`]-clean
//! profiles (and GPU kernel mixes) from a seed, deterministically — the
//! same seed always yields the same workload, so a fuzz failure is
//! reproducible from its seed alone.
//!
//! The GPU side is described by [`KernelMix`], a plain-number mirror of
//! the GPU crate's `KernelProfile` (this crate must not depend on the
//! simulators; `hetcore` converts).

use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, WorkloadProfile};

/// SplitMix64: a tiny, high-quality seeded generator — enough for
/// sampling profile knobs, with no dependency on the trace RNG.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Samples a random, always-valid CPU workload profile from `seed`.
///
/// Every knob is drawn from the full legal range (clamped away from
/// degenerate corners like an all-zero mix or a zero-byte working set),
/// so the fuzzer reaches mixes far from the calibrated applications:
/// div-heavy, branch-heavy, tiny and huge working sets, fully serial and
/// fully parallel.
pub fn workload(seed: u64) -> WorkloadProfile {
    let mut rng = SplitMix64(seed ^ 0xC0DE_F00D_5EED_0001);
    // Random relative weights; at least the ALU weight is kept positive
    // so the total can never collapse to zero.
    let mix = InstMix {
        int_alu: rng.range_f64(0.05, 1.0),
        int_mul: rng.range_f64(0.0, 0.3),
        int_div: rng.range_f64(0.0, 0.1),
        fp_add: rng.range_f64(0.0, 0.6),
        fp_mul: rng.range_f64(0.0, 0.6),
        fp_div: rng.range_f64(0.0, 0.1),
        load: rng.range_f64(0.0, 0.6),
        store: rng.range_f64(0.0, 0.4),
        branch: rng.range_f64(0.0, 0.4),
    };
    let working_set_bytes = 1u64 << rng.range_u64(14, 23); // 16 KB .. 8 MB
    let memory = MemoryBehavior {
        working_set_bytes,
        spatial: rng.range_f64(0.0, 0.95),
        temporal: rng.range_f64(0.0, 0.95),
        hot_region_bytes: working_set_bytes >> rng.range_u64(0, 4),
    };
    let branches = BranchBehavior {
        sites: rng.range_u64(1, 256) as u32,
        bias: rng.range_f64(0.5, 1.0),
        loop_fraction: rng.range_f64(0.0, 0.9),
        loop_period: rng.range_u64(2, 64) as u32,
    };
    let profile = WorkloadProfile {
        name: Box::leak(format!("fuzz-{seed:016x}").into_boxed_str()),
        suite: "fuzz",
        mix,
        mean_dep_distance: rng.range_f64(1.0, 16.0),
        memory,
        branches,
        parallel_fraction: rng.range_f64(0.0, 1.0),
        default_length: 50_000,
    };
    profile
        .validate()
        .expect("fuzzed workload must always be legal");
    profile
}

/// A fuzzed GPU kernel description: the plain-number mirror of the GPU
/// crate's `KernelProfile` (fractions pre-normalized to sum below 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMix {
    /// Vector instructions per wavefront.
    pub insts_per_wavefront: u32,
    /// Total wavefronts in the launch.
    pub wavefronts: u32,
    /// Fraction of VALU instructions.
    pub valu_frac: f64,
    /// Fraction of global-memory instructions.
    pub mem_frac: f64,
    /// Fraction of LDS instructions.
    pub lds_frac: f64,
    /// Probability an instruction depends on its predecessor.
    pub dep_prob: f64,
    /// Register-reuse probability.
    pub reg_reuse: f64,
    /// Probability a global-memory access misses to DRAM.
    pub mem_miss_rate: f64,
}

/// Samples a random, always-legal GPU kernel mix from `seed`.
pub fn kernel_mix(seed: u64) -> KernelMix {
    let mut rng = SplitMix64(seed ^ 0xC0DE_F00D_5EED_0002);
    // Raw positive weights, normalized so the three fractions sum to 1.
    let (v, m, l) = (
        rng.range_f64(0.05, 1.0),
        rng.range_f64(0.0, 0.6),
        rng.range_f64(0.0, 0.4),
    );
    let total = v + m + l;
    KernelMix {
        insts_per_wavefront: rng.range_u64(64, 1024) as u32,
        wavefronts: rng.range_u64(4, 96) as u32,
        valu_frac: v / total,
        mem_frac: m / total,
        lds_frac: l / total,
        dep_prob: rng.range_f64(0.0, 0.9),
        reg_reuse: rng.range_f64(0.0, 0.9),
        mem_miss_rate: rng.range_f64(0.0, 0.6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzed_workloads_are_deterministic_and_valid() {
        for seed in 0..200u64 {
            let a = workload(seed);
            let b = workload(seed);
            assert!(a.validate().is_ok(), "seed {seed}: {a:?}");
            assert_eq!(a, b, "seed {seed} must be reproducible");
        }
    }

    #[test]
    fn fuzzed_workloads_differ_across_seeds() {
        let a = workload(1);
        let b = workload(2);
        assert_ne!(a.mix, b.mix);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn fuzzed_kernels_are_deterministic_and_normalized() {
        for seed in 0..200u64 {
            let k = kernel_mix(seed);
            assert_eq!(k, kernel_mix(seed));
            assert!(k.insts_per_wavefront > 0 && k.wavefronts > 0);
            let sum = k.valu_frac + k.mem_frac + k.lds_frac;
            assert!((sum - 1.0).abs() < 1e-9, "seed {seed}: fractions sum {sum}");
            for p in [k.dep_prob, k.reg_reuse, k.mem_miss_rate] {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn hot_region_stays_within_working_set() {
        for seed in 0..500u64 {
            let w = workload(seed);
            assert!(w.memory.hot_region_bytes > 0);
            assert!(w.memory.hot_region_bytes <= w.memory.working_set_bytes);
        }
    }
}
