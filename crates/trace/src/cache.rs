//! Memoized trace replay for design-space sweeps.
//!
//! A [`crate::stream::TraceGenerator`] stream is a pure function of
//! `(profile, seed, thread)` — it does not depend on the core design being
//! simulated. Campaign sweeps (e.g. the paper's Figure 7: 14 apps x 11
//! designs) therefore regenerate the *identical* instruction stream once
//! per design, and generation is a large fraction of simulator wall time
//! (the stream's RNG-driven control flow defeats the host branch
//! predictor). [`replay`] memoizes the materialized stream per
//! `(profile, seed, thread)` and hands out cheap replay iterators over a
//! shared slice, so a sweep pays for generation once.
//!
//! # Equivalence
//!
//! A replay yields exactly the prefix of the generator's stream that was
//! materialized. Callers state an upper bound on how many instructions the
//! run can pull (committed instructions plus any lookahead the dispatch
//! stage keeps); the cache materializes at least that many, so the
//! simulated core observes the same instruction at every pull as it would
//! from a fresh generator. Requests beyond [`MAX_CACHED_INSTS`] fall back
//! to streaming generation rather than holding giant traces resident.
//!
//! The memo is thread-local: parallel runners each keep their own small
//! cache (entries are evicted LRU beyond [`MAX_ENTRIES`] keys), so no
//! locking sits on the hot path and cross-thread sharing never blocks.

use std::cell::RefCell;
use std::sync::Arc;

use crate::isa::Inst;
use crate::profile::WorkloadProfile;
use crate::stream::TraceGenerator;

/// Total materialized instructions kept resident across all keys. A full
/// campaign (14 apps x serial + parallel seeds at figure scale) sums to a
/// few tens of millions, so a whole sweep — including its repeat runs —
/// replays from memory; beyond the budget, least-recently-used keys are
/// evicted whole.
const MAX_TOTAL_INSTS: u64 = 64_000_000;

/// Longest per-thread trace worth materializing (beyond this, streaming
/// regeneration beats holding the trace resident).
const MAX_CACHED_INSTS: u64 = 8_000_000;

struct ThreadTrace {
    /// Generator positioned exactly `insts.len()` draws into the stream.
    generator: TraceGenerator,
    insts: Arc<Vec<Inst>>,
}

struct Entry {
    profile: WorkloadProfile,
    seed: u64,
    /// Indexed by thread id; `None` until that thread's stream is first
    /// requested.
    threads: Vec<Option<ThreadTrace>>,
    /// LRU stamp (monotonic use counter).
    stamp: u64,
}

thread_local! {
    static CACHE: RefCell<(u64, Vec<Entry>)> = const { RefCell::new((0, Vec::new())) };
}

/// An iterator over a thread's instruction stream: either a replay of the
/// memoized prefix or a fresh streaming generator (cache bypass).
// One value is built per run and then only iterated in place, so the
// size skew between the variants never hits a hot move; boxing `Fresh`
// would instead add a pointer chase to every `next()` on the bypass
// path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CachedTrace {
    /// Replays the shared materialized stream.
    Replay(Replay),
    /// Streams from a fresh generator (request exceeded the cache bound).
    Fresh(TraceGenerator),
}

impl Iterator for CachedTrace {
    type Item = Inst;

    #[inline]
    fn next(&mut self) -> Option<Inst> {
        match self {
            CachedTrace::Replay(r) => r.next(),
            CachedTrace::Fresh(g) => g.next(),
        }
    }
}

/// Replay of a memoized stream prefix.
#[derive(Debug, Clone)]
pub struct Replay {
    insts: Arc<Vec<Inst>>,
    pos: usize,
}

impl Iterator for Replay {
    type Item = Inst;

    #[inline]
    fn next(&mut self) -> Option<Inst> {
        let i = self.insts.get(self.pos).copied();
        self.pos += 1;
        i
    }
}

/// The instruction stream of `thread` for `(profile, seed)`, guaranteed to
/// yield at least `min_len` instructions before ending (the memoized
/// prefix is extended on demand and shared across calls).
///
/// `min_len` must upper-bound the number of instructions the caller will
/// pull; pulls past it may see the stream end early (a fresh
/// [`TraceGenerator`] never ends).
///
/// # Panics
///
/// Panics if the profile fails validation.
pub fn replay(profile: &WorkloadProfile, seed: u64, thread: u32, min_len: u64) -> CachedTrace {
    replay_budgeted(profile, seed, thread, min_len, MAX_TOTAL_INSTS)
}

fn replay_budgeted(
    profile: &WorkloadProfile,
    seed: u64,
    thread: u32,
    min_len: u64,
    budget: u64,
) -> CachedTrace {
    if min_len > MAX_CACHED_INSTS {
        return CachedTrace::Fresh(TraceGenerator::for_thread(profile, seed, thread));
    }
    CACHE.with(|cell| {
        let (stamp, entries) = &mut *cell.borrow_mut();
        *stamp += 1;
        let mut idx = match entries
            .iter()
            .position(|e| e.seed == seed && e.profile == *profile)
        {
            Some(i) => i,
            None => {
                entries.push(Entry {
                    profile: profile.clone(),
                    seed,
                    threads: Vec::new(),
                    stamp: 0,
                });
                entries.len() - 1
            }
        };
        // Stay under the global budget: evict whole LRU keys (never the
        // one being served) until the new request fits.
        let cached = |e: &Entry| -> u64 {
            e.threads
                .iter()
                .flatten()
                .map(|t| t.insts.len() as u64)
                .sum()
        };
        let mut total: u64 = entries.iter().map(cached).sum();
        while total + min_len > budget && entries.len() > 1 {
            let lru = entries
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != idx)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("more than one entry");
            total -= cached(&entries[lru]);
            // `swap_remove` relocates only the old last element (to `lru`).
            entries.swap_remove(lru);
            if idx == entries.len() {
                idx = lru;
            }
        }
        let entry = &mut entries[idx];
        entry.stamp = *stamp;
        let t = thread as usize;
        if entry.threads.len() <= t {
            entry.threads.resize_with(t + 1, || None);
        }
        let slot = entry.threads[t].get_or_insert_with(|| ThreadTrace {
            generator: TraceGenerator::for_thread(profile, seed, thread),
            insts: Arc::new(Vec::new()),
        });
        if (slot.insts.len() as u64) < min_len {
            // Extend the shared prefix in place. Outstanding replays from
            // a previous run have been dropped by now, so `make_mut`
            // normally extends without copying.
            let insts = Arc::make_mut(&mut slot.insts);
            while (insts.len() as u64) < min_len {
                insts.push(slot.generator.next().expect("generator is infinite"));
            }
        }
        CachedTrace::Replay(Replay {
            insts: Arc::clone(&slot.insts),
            pos: 0,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn replay_matches_fresh_generator() {
        let profile = apps::profile("fft").expect("fft exists");
        let fresh: Vec<Inst> = TraceGenerator::for_thread(&profile, 77, 2)
            .take(4000)
            .collect();
        let cached: Vec<Inst> = replay(&profile, 77, 2, 4000).take(4000).collect();
        assert_eq!(fresh, cached);
    }

    #[test]
    fn prefix_extends_in_place_and_stays_consistent() {
        let profile = apps::profile("lu").expect("lu exists");
        let short: Vec<Inst> = replay(&profile, 5, 0, 100).take(100).collect();
        let long: Vec<Inst> = replay(&profile, 5, 0, 5000).take(5000).collect();
        assert_eq!(short, long[..100]);
        let fresh: Vec<Inst> = TraceGenerator::for_thread(&profile, 5, 0)
            .take(5000)
            .collect();
        assert_eq!(long, fresh);
    }

    #[test]
    fn distinct_seeds_and_threads_do_not_collide() {
        let profile = apps::profile("fft").expect("fft exists");
        let a: Vec<Inst> = replay(&profile, 1, 0, 500).take(500).collect();
        let b: Vec<Inst> = replay(&profile, 2, 0, 500).take(500).collect();
        let c: Vec<Inst> = replay(&profile, 1, 1, 500).take(500).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn eviction_keeps_the_cache_bounded_and_correct() {
        let profile = apps::profile("fft").expect("fft exists");
        let expect: Vec<Inst> = TraceGenerator::for_thread(&profile, 100, 0)
            .take(200)
            .collect();
        let first: Vec<Inst> = replay_budgeted(&profile, 100, 0, 200, 1000)
            .take(200)
            .collect();
        // Cycle enough keys through a tiny budget to force whole-key
        // evictions, then re-request the original: it must regenerate the
        // same stream from scratch.
        for seed in 200..220 {
            let _ = replay_budgeted(&profile, seed, 0, 400, 1000);
        }
        let again: Vec<Inst> = replay_budgeted(&profile, 100, 0, 200, 1000)
            .take(200)
            .collect();
        assert_eq!(first, expect);
        assert_eq!(again, expect);
    }

    #[test]
    fn oversized_requests_stream_instead_of_materializing() {
        let profile = apps::profile("fft").expect("fft exists");
        let t = replay(&profile, 3, 0, MAX_CACHED_INSTS + 1);
        assert!(matches!(t, CachedTrace::Fresh(_)));
        let fresh: Vec<Inst> = TraceGenerator::for_thread(&profile, 3, 0)
            .take(64)
            .collect();
        let streamed: Vec<Inst> = replay(&profile, 3, 0, MAX_CACHED_INSTS + 1)
            .take(64)
            .collect();
        assert_eq!(fresh, streamed);
    }
}
