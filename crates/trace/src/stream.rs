//! The deterministic synthetic trace generator.
//!
//! [`TraceGenerator`] is an [`Iterator`] over [`Inst`]s: each call samples
//! an operation class from the profile's mix, register dependencies from a
//! *parallel-chain* dataflow model, memory addresses from the
//! [`crate::addr`] model and branch outcomes from the [`crate::branch`]
//! model. Two generators built with the same profile and seed emit
//! identical streams.
//!
//! # The two-pool chain dataflow model
//!
//! Real programs interleave independent dependency chains; that
//! interleaving is what an out-of-order core mines for ILP and MLP. The
//! generator maintains two chain pools with very different widths:
//!
//! * an **integer spine** of few chains (induction variables, address
//!   computation, stack spills/reloads, loop control): *tight*, so integer
//!   ALU latency, DL1 load-to-use latency and pointer chases land on the
//!   critical path — exactly the structures the paper's DL1/ALU results
//!   hinge on;
//! * a **floating-point pool** of many chains: FP code exposes high ILP
//!   (the paper: "floating-point intensive applications are known to
//!   exhibit high ILP. Hence, deeper-pipelined FPUs can still attain high
//!   levels of occupancy"), so deeper FPU pipelines cost comparatively
//!   little.
//!
//! Both pool widths derive from the profile's `mean_dep_distance` (larger
//! = more ILP). Loads are spill reloads (read *and* extend an integer
//! chain — the DL1 round trip inserts into the spine), pointer chases
//! (same, plus a serialized memory stream), or streaming loads (indexed
//! off a spine value, feeding later arithmetic).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::AddressGenerator;
use crate::branch::BranchModel;
use crate::isa::{Inst, OpClass};
use crate::profile::WorkloadProfile;

/// Per-thread base address stride: thread `t`'s data lives at
/// `t * THREAD_ADDRESS_STRIDE`, keeping multicore working sets disjoint
/// (SPLASH-2-style data partitioning).
pub const THREAD_ADDRESS_STRIDE: u64 = 1 << 32;

/// Probability that an arithmetic instruction reads a second chain.
const SECOND_SOURCE_PROB: f64 = 0.55;

/// Probability that a streaming load's address register is a recent chain
/// value (induction variable / computed index) rather than a long-ready
/// loop-invariant base.
const INDEXED_ADDRESS_PROB: f64 = 0.75;

/// Probability that an integer ALU op is a *leaf* computation (flag
/// setting, comparison, bit manipulation feeding a branch or store) that
/// reads the spine but does not extend it — its latency stays off the
/// critical path, which is why the paper sees only a ~2% cost from TFET
/// ALUs (Figure 13, BaseHet vs BaseHet-FastALU).
const LEAF_ALU_PROB: f64 = 0.45;

/// Probability that a spine operation continues the *most recently
/// updated* integer chain instead of a uniformly chosen one. Real loop
/// bodies cluster their address arithmetic (`i++; use i; ...`), producing
/// the back-to-back dependent ALU pairs whose issue the dual-speed
/// steering of Section IV-C2 exists to protect.
const SPINE_BURST_PROB: f64 = 0.5;

/// Probability that an instruction repeats the previous instruction's op
/// class instead of sampling the mix afresh. Real code is phased — runs of
/// address arithmetic, runs of FP, bursts of memory ops — and this Markov
/// structure leaves the marginal mix unchanged while creating the
/// short-distance dependent pairs that back-to-back issue (and hence
/// dual-speed steering) is about.
const OP_RUN_PROB: f64 = 0.45;

/// Fraction of loads that are *spill reloads*: the value of a dependency
/// chain round-trips through the stack (x86-style register-pressure
/// spills), so the load both reads and extends the chain and the DL1
/// round-trip sits directly on the critical path. Multi2Sim runs x86
/// binaries, whose 8/16-register ISA makes such chains pervasive; this is
/// the mechanism behind the paper's large DL1-latency sensitivity.
const SPILL_RELOAD_PROB: f64 = 0.35;

/// Deterministic synthetic instruction stream for one thread.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    rng: StdRng,
    cumulative: [(f64, OpClass); 9],
    addr: AddressGenerator,
    branches: BranchModel,
    /// Integer-spine chain tails (`None` = not yet written; reads of such
    /// a chain are immediately ready).
    int_tails: Vec<Option<u64>>,
    /// Floating-point chain tails.
    fp_tails: Vec<Option<u64>>,
    /// Fraction of loads whose *address* depends on a chain (pointer
    /// chasing); derived from spatial locality.
    addr_dependence: f64,
    /// Sequence number of the most recent streaming load, which feeds
    /// arithmetic (load-to-use edges).
    last_load: Option<u64>,
    /// The integer chain touched last (burst locality).
    last_int_chain: usize,
    /// The previous op class (op-run locality).
    prev_op: Option<OpClass>,
    /// Next sequence number to emit.
    seq: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed` (thread 0).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        Self::for_thread(profile, seed, 0)
    }

    /// Creates the generator for thread `thread` of a multithreaded run.
    ///
    /// Each thread gets an independent RNG stream and a disjoint address
    /// region, mirroring SPLASH-2-style data partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn for_thread(profile: &WorkloadProfile, seed: u64, thread: u32) -> Self {
        profile.validate().expect("valid workload profile");
        let mix = &profile.mix;
        let total = mix.total();
        let weights = [
            (mix.int_alu, OpClass::IntAlu),
            (mix.int_mul, OpClass::IntMul),
            (mix.int_div, OpClass::IntDiv),
            (mix.fp_add, OpClass::FpAdd),
            (mix.fp_mul, OpClass::FpMul),
            (mix.fp_div, OpClass::FpDiv),
            (mix.load, OpClass::Load),
            (mix.store, OpClass::Store),
            (mix.branch, OpClass::Branch),
        ];
        let mut acc = 0.0;
        let cumulative = weights.map(|(w, op)| {
            acc += w / total;
            (acc, op)
        });

        // Derive a per-thread seed that differs in high entropy bits.
        let thread_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(thread).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = StdRng::seed_from_u64(thread_seed);
        let branches = BranchModel::new(profile.branches, &mut rng);
        let addr = AddressGenerator::new(profile.memory, u64::from(thread) * THREAD_ADDRESS_STRIDE);
        let k = profile.mean_dep_distance;
        let int_chains = ((k / 2.5).round() as usize).clamp(1, 5);
        let fp_chains = ((k * 3.0).round() as usize).clamp(8, 24);
        // Pointer-chasing fraction: streaming profiles index off induction
        // variables (chain-independent); low-spatial profiles chase.
        let addr_dependence = (0.75 * (1.0 - profile.memory.spatial)).clamp(0.05, 0.70);
        TraceGenerator {
            rng,
            cumulative,
            addr,
            branches,
            int_tails: vec![None; int_chains],
            fp_tails: vec![None; fp_chains],
            addr_dependence,
            last_load: None,
            last_int_chain: 0,
            prev_op: None,
            seq: 0,
        }
    }

    fn sample_op(&mut self) -> OpClass {
        if let Some(prev) = self.prev_op {
            if self.rng.gen_bool(OP_RUN_PROB) {
                return prev;
            }
        }
        let r: f64 = self.rng.gen();
        for (cum, op) in self.cumulative {
            if r < cum {
                return op;
            }
        }
        // Floating-point slack: fall back to the last class.
        self.cumulative[8].1
    }

    /// Producer distance to `tail`, if any.
    fn dist_to(&self, tail: Option<u64>) -> Option<u32> {
        let t = tail?;
        Some((self.seq - t).clamp(1, 4095) as u32)
    }

    /// Picks an integer-spine chain: usually bursty (the chain touched
    /// last), otherwise uniform.
    fn pick_int(&mut self) -> usize {
        if self.rng.gen_bool(SPINE_BURST_PROB) {
            self.last_int_chain
        } else {
            let c = self.rng.gen_range(0..self.int_tails.len());
            self.last_int_chain = c;
            c
        }
    }

    /// Picks an FP chain uniformly.
    fn pick_fp(&mut self) -> usize {
        self.rng.gen_range(0..self.fp_tails.len())
    }

    /// Reads the tail of a uniformly chosen integer chain.
    fn int_src(&mut self) -> Option<u32> {
        let c = self.pick_int();
        self.dist_to(self.int_tails[c])
    }

    /// Reads the tail of a uniformly chosen FP chain.
    fn fp_src(&mut self) -> Option<u32> {
        let c = self.pick_fp();
        self.dist_to(self.fp_tails[c])
    }
}

impl Iterator for TraceGenerator {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        let op = self.sample_op();
        self.prev_op = Some(op);
        let mut inst = Inst::simple(op);
        match op {
            OpClass::Load => {
                inst.addr = Some(self.addr.next_addr(&mut self.rng));
                if self.rng.gen_bool(SPILL_RELOAD_PROB) || self.rng.gen_bool(self.addr_dependence) {
                    // Spill reload or pointer chase: the spine value
                    // round-trips through memory — the load reads and
                    // extends an integer chain, so the DL1 round trip
                    // sits on the critical path.
                    let c = self.pick_int();
                    inst.src1_dist = self.dist_to(self.int_tails[c]);
                    self.int_tails[c] = Some(self.seq);
                } else {
                    // Streaming load: `a[i]` indexes off an induction
                    // variable or computed address (a recent spine value).
                    // The loaded value feeds later arithmetic.
                    if self.rng.gen_bool(INDEXED_ADDRESS_PROB) {
                        inst.src1_dist = self.int_src();
                    }
                    self.last_load = Some(self.seq);
                }
            }
            OpClass::Store => {
                // Data value from an FP or integer chain; address off the
                // spine. Stores terminate a value's life and extend no
                // chain.
                inst.src1_dist = if self.rng.gen_bool(0.5) {
                    self.fp_src()
                } else {
                    self.int_src()
                };
                if self.rng.gen_bool(self.addr_dependence) {
                    inst.src2_dist = self.int_src();
                }
                inst.addr = Some(self.addr.next_addr(&mut self.rng));
            }
            OpClass::Branch => {
                // Loop control and data-dependent branches read the spine.
                inst.src1_dist = self.int_src();
                inst.branch = Some(self.branches.next_branch(&mut self.rng));
            }
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => {
                // Spine recurrence i = f(i [, input]) — or a leaf
                // computation that reads the spine without extending it.
                let c = self.pick_int();
                inst.src1_dist = self.dist_to(self.int_tails[c]);
                if self.rng.gen_bool(SECOND_SOURCE_PROB) {
                    let use_load = self.last_load.is_some() && self.rng.gen_bool(0.5);
                    inst.src2_dist = if use_load {
                        self.dist_to(self.last_load)
                    } else {
                        self.int_src()
                    };
                }
                let leaf = op == OpClass::IntAlu && self.rng.gen_bool(LEAF_ALU_PROB);
                if !leaf {
                    self.int_tails[c] = Some(self.seq);
                }
            }
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => {
                // FP recurrence on a wide pool: x_c = f(x_c [, input]).
                let c = self.pick_fp();
                inst.src1_dist = self.dist_to(self.fp_tails[c]);
                if self.rng.gen_bool(SECOND_SOURCE_PROB) {
                    let use_load = self.last_load.is_some() && self.rng.gen_bool(0.7);
                    inst.src2_dist = if use_load {
                        self.dist_to(self.last_load)
                    } else {
                        self.fp_src()
                    };
                }
                self.fp_tails[c] = Some(self.seq);
            }
        }
        self.seq += 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    fn fft() -> WorkloadProfile {
        apps::profile("fft").expect("fft exists")
    }

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<_> = TraceGenerator::new(&fft(), 1).take(5000).collect();
        let b: Vec<_> = TraceGenerator::new(&fft(), 1).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = TraceGenerator::new(&fft(), 1).take(5000).collect();
        let b: Vec<_> = TraceGenerator::new(&fft(), 2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn threads_use_disjoint_address_regions() {
        let t0: Vec<_> = TraceGenerator::for_thread(&fft(), 1, 0)
            .take(2000)
            .collect();
        let t1: Vec<_> = TraceGenerator::for_thread(&fft(), 1, 1)
            .take(2000)
            .collect();
        let max0 = t0
            .iter()
            .filter_map(|i| i.addr)
            .max()
            .expect("some mem ops");
        let min1 = t1
            .iter()
            .filter_map(|i| i.addr)
            .min()
            .expect("some mem ops");
        assert!(max0 < THREAD_ADDRESS_STRIDE);
        assert!(min1 >= THREAD_ADDRESS_STRIDE);
    }

    #[test]
    fn mix_matches_profile_statistically() {
        let profile = fft();
        let n = 100_000;
        let trace: Vec<_> = TraceGenerator::new(&profile, 3).take(n).collect();
        let frac = |op: OpClass| trace.iter().filter(|i| i.op == op).count() as f64 / n as f64;
        assert!((frac(OpClass::Load) - profile.mix.load).abs() < 0.01);
        assert!((frac(OpClass::Branch) - profile.mix.branch).abs() < 0.01);
        let fp = frac(OpClass::FpAdd) + frac(OpClass::FpMul) + frac(OpClass::FpDiv);
        assert!((fp - profile.mix.fp_fraction()).abs() < 0.01);
    }

    #[test]
    fn dependency_distances_track_the_profile_knob() {
        // The ILP knob widens both chain pools, so the mean producer
        // distance must grow monotonically with it.
        let mean_dist = |k: f64| {
            let mut p = fft();
            p.mean_dep_distance = k;
            let trace: Vec<_> = TraceGenerator::new(&p, 4).take(100_000).collect();
            let (sum, count) = trace
                .iter()
                .flat_map(|i| i.source_distances())
                .fold((0u64, 0u64), |(s, c), d| (s + u64::from(d), c + 1));
            sum as f64 / count as f64
        };
        let narrow = mean_dist(2.0);
        let wide = mean_dist(8.0);
        assert!(
            wide > 1.5 * narrow,
            "mean dep distance should grow with the ILP knob: k=2 -> {narrow}, k=8 -> {wide}"
        );
    }

    #[test]
    fn more_chains_mean_more_dataflow_parallelism() {
        // Critical-path depth (unit latency) must shrink as chains grow.
        let depth = |k: f64| {
            let mut p = fft();
            p.mean_dep_distance = k;
            let n = 20_000usize;
            let trace: Vec<_> = TraceGenerator::new(&p, 9).take(n).collect();
            let mut d = vec![0u64; n];
            let mut max = 0;
            for i in 0..n {
                let mut best = 0;
                for s in trace[i].source_distances() {
                    let s = s as usize;
                    if s <= i {
                        best = best.max(d[i - s]);
                    }
                }
                d[i] = best + 1;
                max = max.max(d[i]);
            }
            max
        };
        let narrow = depth(2.0);
        let wide = depth(12.0);
        assert!(
            wide * 3 < narrow,
            "12 chains (depth {wide}) should be far shallower than 2 (depth {narrow})"
        );
    }

    #[test]
    fn memory_ops_have_addresses_and_branches_have_info() {
        let trace: Vec<_> = TraceGenerator::new(&fft(), 5).take(10_000).collect();
        for i in &trace {
            match i.op {
                OpClass::Load | OpClass::Store => assert!(i.addr.is_some()),
                OpClass::Branch => assert!(i.branch.is_some()),
                _ => {
                    assert!(i.addr.is_none());
                    assert!(i.branch.is_none());
                }
            }
        }
    }
}
