//! Derive macros for the vendored `serde` subset.
//!
//! Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields — become `Value::Object` with one entry
//!   per field, in declaration order;
//! * enums whose variants are all unit variants — become `Value::Str`
//!   holding the variant name.
//!
//! Anything else (tuple structs, generic types, data-carrying enum
//! variants) produces a compile error rather than silently wrong code.
//! The macros are written against `proc_macro` alone — no `syn`/`quote`
//! — because the build environment has no registry access; parsing is a
//! small hand-rolled scan over the item's token trees.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a deriving type.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Skips `#[...]` attributes (including doc comments) at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("cannot derive for unit/tuple struct `{name}`"));
            }
            Some(_) => i += 1, // `where` clauses etc. — irrelevant for non-generics
            None => return Err(format!("no body found for `{name}`")),
        }
    };

    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if kind == "struct" {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body_tokens)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_unit_variants(&body_tokens)?,
        })
    }
}

/// Parses `name: Type, ...` named fields, returning the names.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        skip_vis(tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(field);
    }
    Ok(fields)
}

/// Parses `VariantA, VariantB, ...` unit variants, returning the names.
fn parse_unit_variants(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{variant}` carries data; only unit enums are supported"
                ));
            }
            other => return Err(format!("unexpected token after `{variant}`: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?}"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Str(::std::string::String::from(\
                             match self {{ {} }}))\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, {f:?}, {name:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => {name}::{v}"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __s = __v.as_str().ok_or_else(|| ::serde::Error::custom(\
                             ::std::format!(\"expected {name} variant name, got {{__v:?}}\")))?;\n\
                         ::std::result::Result::Ok(match __s {{\n\
                             {},\n\
                             __other => return ::std::result::Result::Err(\
                                 ::serde::Error::custom(::std::format!(\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                         }})\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
