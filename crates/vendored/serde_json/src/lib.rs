//! Offline drop-in subset of the `serde_json` API.
//!
//! Prints and parses the vendored [`serde`] crate's [`Value`] tree as
//! JSON text. Formatting matches upstream `serde_json` closely enough
//! for this workspace's purposes: two-space pretty indentation,
//! shortest-round-trip floats (Rust's `{:?}`, which like `ryu` always
//! keeps a decimal point), and `null` for non-finite floats.
//!
//! Output is deterministic: objects keep insertion order, so equal
//! value trees always print byte-identically — the property the
//! campaign runner's "parallel output equals serial output" contract
//! rests on.

#![warn(missing_docs)]

use std::fmt;

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A JSON error (serialization never fails; parsing can).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ----------------------------------------------------------------------
// Writer.
// ----------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-round-trip and always keeps `.0`
                // on integral floats, matching upstream's ryu output.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parser.
// ----------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        let text = std::str::from_utf8(self.bytes)
            .map_err(|_| Error::new("invalid UTF-8 in JSON input"))?;
        let mut chars = text[self.pos..].char_indices().peekable();
        while let Some((off, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += off + 1;
                    return Ok(s);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, '/')) => s.push('/'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'b')) => s.push('\u{8}'),
                    Some((_, 'f')) => s.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| Error::new("bad hex in \\u escape"))?;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u codepoint"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("bad escape {other:?}")));
                    }
                },
                c => s.push(c),
            }
        }
        Err(Error::new("unterminated string"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let rows: Vec<(String, Vec<f64>)> =
            vec![("lu".into(), vec![1.0, 0.5]), ("fft".into(), vec![2.25])];
        for text in [
            to_string(&rows).expect("compact"),
            to_string_pretty(&rows).expect("pretty"),
        ] {
            let back: Vec<(String, Vec<f64>)> = from_str(&text).expect("parse back");
            assert_eq!(back, rows);
        }
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).expect("float"), "1.0");
        assert_eq!(to_string(&0.1f64).expect("float"), "0.1");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\none \"quoted\" \\ tab\t".to_string();
        let text = to_string(&s).expect("string");
        let back: String = from_str(&text).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("[1, 2").is_err());
        assert!(from_str::<f64>("nul").is_err());
        assert!(from_str::<f64>("1.5 garbage").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\": }").is_err());
    }

    #[test]
    fn truncated_input_never_panics() {
        let full = to_string_pretty(&vec![("k".to_string(), vec![1.5, 2.5])]).expect("ok");
        for cut in 0..full.len() {
            let _ = from_str::<Vec<(String, Vec<f64>)>>(&full[..cut]);
        }
    }

    #[test]
    fn pretty_layout_matches_upstream_shape() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).expect("ok"), "[\n  1,\n  2\n]");
    }
}
