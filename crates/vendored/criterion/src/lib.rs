//! Offline drop-in subset of the `criterion` API.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` surface and the
//! `criterion_group!`/`criterion_main!` macros the workspace's benches
//! use, backed by a simple wall-clock harness: each benchmark warms up
//! briefly, then runs enough iterations to fill a fixed measurement
//! window and reports the mean time per iteration. No statistical
//! analysis, no HTML reports — just stable, comparable numbers printed
//! to stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up window per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the nominal sample count (kept for API compatibility; the
    /// harness scales iterations to the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness asks.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Warm up and estimate the per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_start = Instant::now();
    let mut per_iter = loop {
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            break b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
        }
        if warmup_start.elapsed() > WARMUP_WINDOW {
            break Duration::from_nanos(1);
        }
        b.iters = b.iters.saturating_mul(2);
    };
    if per_iter.is_zero() {
        per_iter = Duration::from_nanos(1);
    }

    // One measurement pass sized to the window.
    let target = (MEASURE_WINDOW.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000);
    b.iters = target as u64;
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!(
        "{name:<40} time: [{}] ({} iterations)",
        format_ns(mean_ns),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
