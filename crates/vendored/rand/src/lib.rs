//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` the simulators actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is **xoshiro256\*\***, seeded through SplitMix64 — a
//! different algorithm from upstream `StdRng` (ChaCha12), but with the
//! same contract the simulators rely on: a deterministic, high-quality
//! stream that is a pure function of the seed. Every consumer in this
//! workspace treats the stream as an arbitrary-but-fixed sample source
//! (trace synthesis, branch outcomes, address generation), so the exact
//! algorithm only has to be *stable*, not upstream-identical.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array upstream; kept here for API
    /// compatibility).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Modulo reduction: the bias over a u64 draw is far below
                // anything the stochastic simulators can observe. The span
                // of any range over a <= 64-bit type fits in a u64, so the
                // reduction stays in hardware-division width (a u128
                // modulo lowers to a libcall an order of magnitude
                // slower) — the result is bit-identical.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // As above: the span fits in a u64, and two's-complement wrapping
        // reproduces the wide-arithmetic result exactly.
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`f64` in `[0,1)`, full-width integers,
    /// fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0,1]"
        );
        f64::sample(self) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start all-zero
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(2..9usize);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every value of a small range appears"
        );
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
