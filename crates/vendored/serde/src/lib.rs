//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small serialization framework under the `serde` name. It
//! keeps the parts this repository uses — `#[derive(Serialize,
//! Deserialize)]` on plain structs and unit-variant enums, and the
//! `serde_json` string functions — while replacing serde's
//! visitor-based data model with a much simpler one: every type
//! converts to and from a tree of [`value::Value`] nodes.
//!
//! The derive macros (re-exported from `serde_derive` under the
//! `derive` feature, like upstream) generate `to_value`/`from_value`
//! implementations: structs map to objects with one entry per field in
//! declaration order, unit enums map to their variant name as a string.

#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all (de)serialization goes through.
pub mod value {
    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A negative or small signed integer.
        Int(i64),
        /// A non-negative integer.
        UInt(u64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Array(Vec<Value>),
        /// An ordered map (insertion order preserved, so output is
        /// deterministic).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The entries of an object, if this is one.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }

        /// The elements of an array, if this is one.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// A numeric view, accepting any of the three number shapes.
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::Int(v) => Some(v as f64),
                Value::UInt(v) => Some(v as f64),
                Value::Float(v) => Some(v),
                _ => None,
            }
        }

        /// A non-negative integer view.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::UInt(v) => Some(v),
                Value::Int(v) if v >= 0 => Some(v as u64),
                _ => None,
            }
        }

        /// A signed integer view.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::Int(v) => Some(v),
                Value::UInt(v) => i64::try_from(v).ok(),
                _ => None,
            }
        }

        /// The boolean, if this is one.
        pub fn as_bool(&self) -> Option<bool> {
            match *self {
                Value::Bool(b) => Some(b),
                _ => None,
            }
        }

        /// Looks up an object field by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }
}

use value::Value;

/// A (de)serialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------------------------
// Primitive impls.
// ----------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned int, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v
            .as_u64()
            .ok_or_else(|| Error::custom(format!("expected unsigned int, got {v:?}")))?;
        usize::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = i64::from(*self);
                if wide >= 0 { Value::UInt(wide as u64) } else { Value::Int(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected int, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
                let want = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected {want}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Support machinery for the derive macros — not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up and deserializes one struct field.
    pub fn field<T: Deserialize>(v: &Value, name: &str, ty: &str) -> Result<T, Error> {
        let entry = v
            .get(name)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))?;
        T::from_value(entry).map_err(|e| Error::custom(format!("field `{name}` of {ty}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).expect("u64"), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).expect("f64"), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).expect("string"),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).expect("bool"));
    }

    #[test]
    fn nested_containers_round_trip() {
        let rows: Vec<(String, Vec<f64>)> =
            vec![("a".into(), vec![1.0, 2.0]), ("b".into(), vec![3.0])];
        let back = Vec::<(String, Vec<f64>)>::from_value(&rows.to_value()).expect("round trip");
        assert_eq!(back, rows);
    }

    #[test]
    fn option_uses_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).expect("null"), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::UInt(3)).expect("some"),
            Some(3)
        );
    }

    #[test]
    fn type_mismatch_reports_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
