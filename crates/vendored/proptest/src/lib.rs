//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its property tests use: range and
//! tuple strategies, [`Strategy::prop_map`], [`collection::vec`],
//! [`any`], [`ProptestConfig::with_cases`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberate for this repository:
//!
//! * **No shrinking.** A failing case reports the panic message of the
//!   assertion with the case number; inputs are reproducible because
//!   case `i` of a test is always generated from a fixed seed derived
//!   from `i`.
//! * **Deterministic by construction.** Upstream randomizes seeds per
//!   run; here every run of a test exercises the same input sequence,
//!   matching the repository-wide "bit-identical reruns" policy.

#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; kept.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.gen::<u64>() & 0xFF) as u8
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// The error side of a property-test body.
///
/// Upstream test bodies run inside a closure returning
/// `Result<(), TestCaseError>` so they can `return Ok(())` to skip the
/// rest of a case; this type keeps that shape compiling. Assertion
/// macros panic directly instead of returning `Err`, so an `Err` is
/// only ever produced by hand-written test code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

/// Derives the per-case RNG for case `case` of test `name`.
///
/// Fixed per (test, case) so failures reproduce across runs.
#[doc(hidden)]
pub fn case_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                // The body runs in a closure returning `Result` so test
                // code can `return Ok(())` to skip a case, as upstream.
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!("case {} failed: {:?}", __case, __e);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = super::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = super::TestRng::seed_from_u64(2);
        let fixed = super::collection::vec(0u8..5, 7);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 7);
        let ranged = super::collection::vec(0u8..5, 2..6);
        for _ in 0..50 {
            let len = Strategy::sample(&ranged, &mut rng).len();
            assert!((2..6).contains(&len));
        }
    }

    #[test]
    fn case_rng_is_stable_per_case() {
        use rand::Rng;
        let a: u64 = super::case_rng("t", 3).gen();
        let b: u64 = super::case_rng("t", 3).gen();
        let c: u64 = super::case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, tuples, maps and config all work.
        #[test]
        fn macro_end_to_end((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y)),
                            flag in any::<bool>()) {
            prop_assert!(b >= a);
            let _ = flag;
        }
    }
}
